//! Theorem 8.1: the spanner construction in the Congested Clique, with
//! the parallel-repetition trick for a w.h.p. size bound.
//!
//! Cluster-state evolution reuses the paper's engine semantics (the
//! exact Step B/C rules of `spanner_core::engine`); this module adds
//! what Section 8 is actually about:
//!
//! * the **communication schedule** and its round cost in the clique
//!   model — label broadcasts, candidate aggregation at cluster centres
//!   (Lenzen routing with measured fan-ins), membership updates,
//!   contraction relabels;
//! * the **parallel repetition**: per iteration, every cluster centre
//!   draws `R` coins and broadcasts them as one packed `O(log n)`-bit
//!   message; `R` collector nodes tally, for each run, the number of
//!   sampled clusters and the number of edges the run would add; all
//!   nodes then commit — deterministically, from the same tallies — to
//!   the cheapest run whose sampled-cluster count is within twice its
//!   expectation. Expected-size bounds become w.h.p. bounds at `O(1)`
//!   extra rounds per iteration (Theorem 8.1's proof, literally).
//!
//! Run 0 always uses the caller's seed unchanged, so `repetitions = 1`
//! reproduces `spanner_core::general_spanner` **bit-for-bit** — the
//! differential tests rely on this.

use spanner_core::coins::splitmix64;
use spanner_core::engine::Engine;
use spanner_core::{SpannerResult, TradeoffParams};
use spanner_graph::Graph;

use crate::network::CcNetwork;

/// Outcome of a Congested Clique spanner construction.
#[derive(Debug, Clone)]
pub struct CcSpannerRun {
    /// The spanner and schedule statistics.
    pub result: SpannerResult,
    /// Measured clique rounds.
    pub rounds: u64,
    /// Total words communicated.
    pub total_words: u64,
    /// Parallel repetitions used per iteration.
    pub repetitions: usize,
    /// Which run index each iteration committed to (all zeros when
    /// `repetitions = 1`).
    pub chosen_runs: Vec<usize>,
}

/// Seed for repetition `r` of a base seed (run 0 = the base seed, so a
/// single-repetition execution matches the sequential reference).
fn run_seed(base: u64, r: usize) -> u64 {
    if r == 0 {
        base
    } else {
        splitmix64(base ^ (0xC11C + r as u64))
    }
}

/// Builds a spanner in the Congested Clique model (Theorem 8.1).
///
/// `repetitions` is the paper's `O(log n)` parallel runs; pass 1 to
/// disable the w.h.p. amplification (expected-size only, coin-identical
/// to the sequential reference).
pub fn cc_spanner(
    g: &Graph,
    params: TradeoffParams,
    seed: u64,
    repetitions: usize,
) -> CcSpannerRun {
    assert!(repetitions >= 1, "need at least one repetition");
    assert!(
        repetitions <= 64,
        "coins for all runs must pack into one O(log n)-bit message"
    );
    let n = g.n();
    let mut net = CcNetwork::new(n.max(2));
    let algorithm = format!("cc-spanner(k={},t={},R={repetitions})", params.k, params.t);

    if params.k == 1 || g.m() == 0 {
        let result = SpannerResult {
            edges: (0..g.m() as u32).collect(),
            epochs: 0,
            iterations: 0,
            stretch_bound: 1.0,
            radius_per_epoch: vec![],
            supernodes_per_epoch: vec![],
            algorithm,
        };
        return CcSpannerRun {
            result,
            rounds: 0,
            total_words: 0,
            repetitions,
            chosen_runs: vec![],
        };
    }

    let mut engine = Engine::new(g, seed);
    let mut chosen_runs = Vec::new();
    let l = params.epochs();

    for epoch in 1..=l {
        let p = params.sampling_probability(n, epoch);
        for iter in 1..=params.t {
            // --- Communication, charged per the Section 8 schedule. ---
            // (a) Every node broadcasts its (super-node, cluster) labels.
            net.broadcast_from_all(2);
            // (b) Cluster centres broadcast R packed coins (one word).
            net.broadcast_from_all(1);

            // (c) Trial runs: every node can simulate each run locally
            // (it knows all labels and all coins); the collectors only
            // tally sizes. We reproduce the tallies by running each
            // repetition on a scratch copy of the state.
            let clusters = engine.cluster_count();
            let expected_sampled = (clusters as f64) * p;
            let mut best: Option<(usize, usize, usize)> = None; // (edges, run, cands)
            let mut fallback: Option<(usize, usize, usize)> = None;
            for r in 0..repetitions {
                let mut trial = engine.clone();
                trial.set_seed(run_seed(seed, r));
                let stats = trial.run_iteration(p, epoch, iter);
                let within = (stats.sampled_clusters as f64) <= (2.0 * expected_sampled + 2.0);
                let cand = (stats.edges_added, r, stats.max_candidates_per_cluster);
                if within && best.map_or(true, |b| cand < b) {
                    best = Some(cand);
                }
                if fallback.map_or(true, |b| cand < b) {
                    fallback = Some(cand);
                }
            }
            let (_, chosen, max_fanin) = best.or(fallback).expect("at least one repetition ran");
            chosen_runs.push(chosen);

            // (d) Tallies to the R collectors and the collectors'
            // verdict back: two fixed rounds.
            net.charge_rounds(2, (2 * n * repetitions) as u64);

            // (e) Candidate aggregation at cluster centres (members send
            // their per-neighbour-cluster minima) and membership update
            // (centres inform joiners): Lenzen routing at the measured
            // fan-in, plus one round back.
            let sends = vec![4usize; n.max(2)];
            let mut recvs = vec![0usize; n.max(2)];
            recvs[0] = 4 * max_fanin; // the busiest centre
            net.lenzen_route(&sends, &recvs);
            net.charge_rounds(1, n as u64);

            // --- Commit the chosen run on the real state. ---
            engine.set_seed(run_seed(seed, chosen));
            engine.run_iteration(p, epoch, iter);
        }
        // Step C: contraction — a relabel (local) plus one Lenzen round
        // for the minimum-per-super-node-pair reduction.
        let sends = vec![4usize; n.max(2)];
        let recvs = vec![4usize; n.max(2)];
        net.lenzen_route(&sends, &recvs);
        engine.contract();
    }
    engine.phase2();
    let mut result = engine.finish(algorithm, params.stretch_bound());
    result.epochs = l;

    CcSpannerRun {
        result,
        rounds: net.rounds(),
        total_words: net.total_words(),
        repetitions,
        chosen_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::{general_spanner, BuildOptions};
    use spanner_graph::generators::{self, WeightModel};
    use spanner_graph::verify::verify_spanner;

    #[test]
    fn single_repetition_matches_sequential_reference() {
        let g = generators::connected_erdos_renyi(100, 0.08, WeightModel::Uniform(1, 8), 3);
        let params = TradeoffParams::new(8, 2);
        let seq = general_spanner(&g, params, 42, BuildOptions::default());
        let cc = cc_spanner(&g, params, 42, 1);
        assert_eq!(seq.edges, cc.result.edges, "R=1 must equal the reference");
        assert!(cc.chosen_runs.iter().all(|&r| r == 0));
    }

    #[test]
    fn repetitions_produce_valid_spanner() {
        let g = generators::connected_erdos_renyi(120, 0.07, WeightModel::PowersOfTwo(5), 5);
        let params = TradeoffParams::new(8, 3);
        let cc = cc_spanner(&g, params, 7, 8);
        let rep = verify_spanner(&g, &cc.result.edges);
        assert!(rep.all_edges_spanned);
        assert!(
            rep.max_edge_stretch <= cc.result.stretch_bound + 1e-9,
            "{} > {}",
            rep.max_edge_stretch,
            cc.result.stretch_bound
        );
    }

    #[test]
    fn repetition_never_hurts_expected_size_much() {
        // Averaged over seeds, best-of-R is at most the single-run size
        // (selection minimises edges added subject to the sampling
        // constraint, which holds for run 0 most of the time).
        let g = generators::connected_erdos_renyi(150, 0.08, WeightModel::Unit, 9);
        let params = TradeoffParams::new(4, 2);
        let mut single = 0usize;
        let mut amplified = 0usize;
        for seed in 0..6 {
            single += cc_spanner(&g, params, seed, 1).result.size();
            amplified += cc_spanner(&g, params, seed, 8).result.size();
        }
        assert!(
            (amplified as f64) <= 1.1 * single as f64,
            "amplified {amplified} vs single {single}"
        );
    }

    #[test]
    fn rounds_scale_with_iterations_not_n() {
        let params = TradeoffParams::new(16, 2);
        let g_small = generators::connected_erdos_renyi(80, 0.1, WeightModel::Unit, 1);
        let g_large = generators::connected_erdos_renyi(320, 0.025, WeightModel::Unit, 1);
        let r_small = cc_spanner(&g_small, params, 3, 4);
        let r_large = cc_spanner(&g_large, params, 3, 4);
        // Same schedule ⇒ same round count up to per-iteration constants
        // (no dependence on n beyond load batching).
        assert!(
            (r_large.rounds as f64) <= 1.5 * r_small.rounds as f64 + 10.0,
            "rounds {} vs {}",
            r_large.rounds,
            r_small.rounds
        );
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_rejected() {
        let g = generators::cycle(5, WeightModel::Unit, 0);
        let _ = cc_spanner(&g, TradeoffParams::new(2, 1), 0, 0);
    }
}
