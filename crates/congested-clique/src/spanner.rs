//! Theorem 8.1: the spanner construction in the Congested Clique, with
//! the parallel-repetition trick for a w.h.p. size bound.
//!
//! The execution loop lives in the unified pipeline
//! (`spanner_core::pipeline`, `Backend::CongestedClique`); this module
//! keeps the classic entry point as a thin shim and the Section 8
//! result type. See the pipeline's `clique` module for the
//! communication schedule and the repetition commit rule.
//!
//! Run 0 always uses the caller's seed unchanged, so `repetitions = 1`
//! reproduces `spanner_core::general_spanner` **bit-for-bit** — the
//! differential tests rely on this.

use spanner_core::pipeline::{Algorithm, Backend, SpannerRequest};
use spanner_core::{SpannerResult, TradeoffParams};
use spanner_graph::Graph;

/// Outcome of a Congested Clique spanner construction.
#[derive(Debug, Clone)]
pub struct CcSpannerRun {
    /// The spanner and schedule statistics.
    pub result: SpannerResult,
    /// Measured clique rounds.
    pub rounds: u64,
    /// Total words communicated.
    pub total_words: u64,
    /// Parallel repetitions used per iteration.
    pub repetitions: usize,
    /// Which run index each iteration committed to (all zeros when
    /// `repetitions = 1`).
    pub chosen_runs: Vec<usize>,
}

/// Builds a spanner in the Congested Clique model (Theorem 8.1).
///
/// `repetitions` is the paper's `O(log n)` parallel runs; pass 1 to
/// disable the w.h.p. amplification (expected-size only, coin-identical
/// to the sequential reference).
///
/// Shim over `spanner_core::pipeline`: equivalent to running a
/// [`SpannerRequest`] on `Backend::CongestedClique`.
pub fn cc_spanner(
    g: &Graph,
    params: TradeoffParams,
    seed: u64,
    repetitions: usize,
) -> CcSpannerRun {
    assert!(repetitions >= 1, "need at least one repetition");
    assert!(
        repetitions <= 64,
        "coins for all runs must pack into one O(log n)-bit message"
    );
    let report = SpannerRequest::new(g, Algorithm::General(params))
        .on(Backend::CongestedClique { repetitions })
        .seed(seed)
        .run()
        .expect("validated above; clique execution is infallible");
    let stats = report
        .stats
        .congested_clique()
        .expect("congested-clique backend reports clique stats")
        .clone();
    CcSpannerRun {
        result: report.result,
        rounds: stats.rounds,
        total_words: stats.total_words,
        repetitions: stats.repetitions,
        chosen_runs: stats.chosen_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::{general_spanner, BuildOptions};
    use spanner_graph::generators::{self, WeightModel};
    use spanner_graph::verify::verify_spanner;

    #[test]
    fn single_repetition_matches_sequential_reference() {
        let g = generators::connected_erdos_renyi(100, 0.08, WeightModel::Uniform(1, 8), 3);
        let params = TradeoffParams::new(8, 2);
        let seq = general_spanner(&g, params, 42, BuildOptions::default());
        let cc = cc_spanner(&g, params, 42, 1);
        assert_eq!(seq.edges, cc.result.edges, "R=1 must equal the reference");
        assert!(cc.chosen_runs.iter().all(|&r| r == 0));
    }

    #[test]
    fn repetitions_produce_valid_spanner() {
        let g = generators::connected_erdos_renyi(120, 0.07, WeightModel::PowersOfTwo(5), 5);
        let params = TradeoffParams::new(8, 3);
        let cc = cc_spanner(&g, params, 7, 8);
        let rep = verify_spanner(&g, &cc.result.edges);
        assert!(rep.all_edges_spanned);
        assert!(
            rep.max_edge_stretch <= cc.result.stretch_bound + 1e-9,
            "{} > {}",
            rep.max_edge_stretch,
            cc.result.stretch_bound
        );
    }

    #[test]
    fn repetition_never_hurts_expected_size_much() {
        // Averaged over seeds, best-of-R is at most the single-run size
        // (selection minimises edges added subject to the sampling
        // constraint, which holds for run 0 most of the time).
        let g = generators::connected_erdos_renyi(150, 0.08, WeightModel::Unit, 9);
        let params = TradeoffParams::new(4, 2);
        let mut single = 0usize;
        let mut amplified = 0usize;
        for seed in 0..6 {
            single += cc_spanner(&g, params, seed, 1).result.size();
            amplified += cc_spanner(&g, params, seed, 8).result.size();
        }
        assert!(
            (amplified as f64) <= 1.1 * single as f64,
            "amplified {amplified} vs single {single}"
        );
    }

    #[test]
    fn rounds_scale_with_iterations_not_n() {
        let params = TradeoffParams::new(16, 2);
        let g_small = generators::connected_erdos_renyi(80, 0.1, WeightModel::Unit, 1);
        let g_large = generators::connected_erdos_renyi(320, 0.025, WeightModel::Unit, 1);
        let r_small = cc_spanner(&g_small, params, 3, 4);
        let r_large = cc_spanner(&g_large, params, 3, 4);
        // Same schedule ⇒ same round count up to per-iteration constants
        // (no dependence on n beyond load batching).
        assert!(
            (r_large.rounds as f64) <= 1.5 * r_small.rounds as f64 + 10.0,
            "rounds {} vs {}",
            r_large.rounds,
            r_small.rounds
        );
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_rejected() {
        let g = generators::cycle(5, WeightModel::Unit, 0);
        let _ = cc_spanner(&g, TradeoffParams::new(2, 1), 0, 0);
    }
}
