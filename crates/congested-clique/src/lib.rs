//! # congested-clique
//!
//! Section 8 of the paper: spanners and approximate APSP in the
//! **Congested Clique** model — `n` nodes, synchronous rounds, every
//! ordered pair may exchange one `O(log n)`-bit message per round.
//!
//! Three pieces:
//!
//! * [`network`] — the round/bandwidth accounting model, including
//!   Lenzen's routing theorem as a primitive (any load with ≤ `n`
//!   messages sent and received per node routes in `O(1)` rounds) and
//!   all-to-all information collection (`W` total words reach every node
//!   in `⌈W/(n−1)⌉ + O(1)` rounds).
//! * [`spanner`] — Theorem 8.1: the general trade-off algorithm with the
//!   parallel-repetition trick implemented bit-for-bit: per iteration,
//!   cluster centres flip `R = O(log n)` coins, pack them into a single
//!   `O(log n)`-bit broadcast, designated collector nodes tally each
//!   run's cost, and all nodes deterministically commit to the best run
//!   — turning the expected-size guarantee into a w.h.p. one at `O(1)`
//!   extra rounds per iteration.
//! * [`apsp`] — Corollary 1.5: every node learns the whole spanner
//!   (size `O(n log log n)` ⇒ `O(log log n)` rounds by Lenzen routing)
//!   and answers its row of APSP locally.
//!
//! With `repetitions = 1` the spanner run is coin-identical to the
//! sequential reference (`spanner_core::general_spanner`), which the
//! differential tests exploit.

pub mod apsp;
pub mod network;
pub mod spanner;

pub use apsp::{cc_apsp, CcApspRun};
pub use network::CcNetwork;
pub use spanner::{cc_spanner, CcSpannerRun};
