//! The Congested Clique round/bandwidth model.
//!
//! `n` nodes; per round, every ordered pair of nodes may exchange one
//! message of `O(log n)` bits — we count in *words* (one word =
//! `O(log n)` bits), with `b_words` words per pairwise message (1 by
//! default). A node may therefore send and receive up to `(n−1)·b_words`
//! words per round.
//!
//! The primitives charge rounds for the *measured* loads the algorithms
//! feed them; nothing is asserted about loads in advance.

/// The accounting context for one Congested Clique execution.
#[derive(Debug, Clone)]
pub struct CcNetwork {
    /// Number of nodes (= vertices of the input graph).
    pub n: usize,
    /// Words per pairwise message per round (the `O(log n)` bits).
    pub b_words: usize,
    /// Rounds executed.
    rounds: u64,
    /// Total words communicated (for reporting).
    total_words: u64,
    /// The constant charged for one application of Lenzen's routing
    /// theorem (the theorem's `O(1)`; 2 here: one distribution round,
    /// one delivery round).
    pub lenzen_constant: u64,
}

impl CcNetwork {
    /// A fresh clique on `n` nodes with 1-word messages.
    pub fn new(n: usize) -> Self {
        CcNetwork {
            n,
            b_words: 1,
            rounds: 0,
            total_words: 0,
            lenzen_constant: 2,
        }
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total words communicated so far.
    pub fn total_words(&self) -> u64 {
        self.total_words
    }

    /// Per-node per-round receive budget in words.
    pub fn node_budget(&self) -> usize {
        self.n.saturating_sub(1) * self.b_words
    }

    /// Every node sends the same `words`-word payload to every other
    /// node (e.g. its cluster label, or its packed repetition coins).
    /// Rounds: `⌈words / b_words⌉` — each round carries `b_words` more
    /// words of the payload to everyone.
    pub fn broadcast_from_all(&mut self, words: usize) -> u64 {
        let r = words.div_ceil(self.b_words).max(1) as u64;
        self.rounds += r;
        self.total_words += (self.n * self.n.saturating_sub(1) * words) as u64;
        r
    }

    /// Lenzen routing: an arbitrary message multiset where node `i`
    /// sends `sends[i]` words and receives `recvs[i]` words. The theorem
    /// delivers any instance with ≤ `n` messages per node in `O(1)`
    /// rounds; heavier loads are split into `⌈load / budget⌉` batches.
    pub fn lenzen_route(&mut self, sends: &[usize], recvs: &[usize]) -> u64 {
        assert_eq!(sends.len(), self.n, "one send load per node");
        assert_eq!(recvs.len(), self.n, "one receive load per node");
        let max_send = sends.iter().copied().max().unwrap_or(0);
        let max_recv = recvs.iter().copied().max().unwrap_or(0);
        let budget = self.node_budget().max(1);
        let batches = max_send.max(max_recv).div_ceil(budget).max(1) as u64;
        let r = batches * self.lenzen_constant;
        self.rounds += r;
        self.total_words += sends.iter().map(|&s| s as u64).sum::<u64>();
        r
    }

    /// All-to-all dissemination: `total_words` of information (spread
    /// arbitrarily among the nodes) must become known to **every** node.
    /// Each node can receive `(n−1)·b_words` words per round, so this is
    /// `⌈total / budget⌉` rounds plus the Lenzen constant for the
    /// initial rebalancing (the Corollary 1.5 "collect the spanner at
    /// all nodes via Lenzen's routing" step).
    pub fn disseminate_to_all(&mut self, total_words: usize) -> u64 {
        let budget = self.node_budget().max(1);
        let r = (total_words.div_ceil(budget) as u64).max(1) + self.lenzen_constant;
        self.rounds += r;
        self.total_words += (total_words * self.n) as u64;
        r
    }

    /// Charges `r` literal rounds (for fixed-schedule steps like the
    /// collector tallies of Section 8).
    pub fn charge_rounds(&mut self, r: u64, words: u64) {
        self.rounds += r;
        self.total_words += words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_charges_per_word() {
        let mut net = CcNetwork::new(100);
        assert_eq!(net.broadcast_from_all(1), 1);
        assert_eq!(net.broadcast_from_all(3), 3);
        assert_eq!(net.rounds(), 4);
    }

    #[test]
    fn lenzen_light_loads_are_constant() {
        let mut net = CcNetwork::new(64);
        let light = vec![10usize; 64];
        let r = net.lenzen_route(&light, &light);
        assert_eq!(r, net.lenzen_constant);
    }

    #[test]
    fn lenzen_heavy_loads_batch() {
        let mut net = CcNetwork::new(16);
        // budget = 15 words; a node pushing 100 words needs ceil(100/15)=7 batches.
        let mut sends = vec![0usize; 16];
        sends[3] = 100;
        let recvs = vec![7usize; 16];
        let r = net.lenzen_route(&sends, &recvs);
        assert_eq!(r, 7 * net.lenzen_constant);
    }

    #[test]
    fn dissemination_scales_with_payload() {
        let mut net = CcNetwork::new(101); // budget 100
        let r_small = net.disseminate_to_all(100);
        let mut net2 = CcNetwork::new(101);
        let r_big = net2.disseminate_to_all(1000);
        assert!(r_big > r_small);
        assert_eq!(r_big - net.lenzen_constant, 10);
    }

    #[test]
    #[should_panic(expected = "one send load per node")]
    fn lenzen_validates_shape() {
        let mut net = CcNetwork::new(4);
        net.lenzen_route(&[1, 2], &[1, 2, 3, 4]);
    }
}
