//! The Congested Clique round/bandwidth model.
//!
//! The accounting type itself ([`CcNetwork`]) now lives in
//! `spanner_core::pipeline::clique`, where the unified pipeline's
//! `Backend::CongestedClique` driver executes; this module re-exports
//! it so every pre-existing `congested_clique::network::CcNetwork` /
//! `congested_clique::CcNetwork` path keeps compiling.

pub use spanner_core::pipeline::clique::CcNetwork;
