//! Corollary 1.5: `O(log^s n)`-approximate weighted APSP in the
//! Congested Clique in `O(t·log log n / log(t+1))` rounds.
//!
//! Pipeline: build the Theorem 8.1 spanner with `k = ⌈log₂ n⌉`,
//! `t = ⌈log₂ log₂ n⌉` and `O(log n)` repetitions (w.h.p. size
//! `O(n log log n)`); disseminate the whole spanner to every node with
//! Lenzen routing (`⌈|E_S|·w / (n−1)⌉ + O(1)` rounds — the
//! `O(log log n)` of the corollary); every node locally answers its row
//! of the distance table.

use spanner_graph::edge::Distance;
use spanner_graph::shortest_paths::dijkstra;
use spanner_graph::Graph;

use crate::network::CcNetwork;
use crate::spanner::{cc_spanner, CcSpannerRun};
use spanner_core::TradeoffParams;

/// Outcome of the Congested Clique APSP pipeline.
#[derive(Debug)]
pub struct CcApspRun {
    /// The underlying spanner run (its `rounds` are included below).
    pub spanner_run: CcSpannerRun,
    /// Rounds for the spanner dissemination step alone.
    pub dissemination_rounds: u64,
    /// Total clique rounds (construction + dissemination).
    pub total_rounds: u64,
    /// The spanner every node now holds.
    pub spanner: Graph,
    /// The stretch guarantee (`O(log^s n)` for the derived parameters).
    pub stretch_bound: f64,
}

impl CcApspRun {
    /// Node `u`'s approximate distance row (what node `u` computes
    /// locally after dissemination).
    pub fn row(&self, u: u32) -> Vec<Distance> {
        dijkstra(&self.spanner, u).dist
    }
}

/// The Corollary 1.5 parameters (`k = ⌈log₂ n⌉`, `t = ⌈log₂ log₂ n⌉`).
pub fn cc_apsp_params(n: usize) -> TradeoffParams {
    let nf = n.max(4) as f64;
    let k = (nf.log2().ceil() as u32).max(2);
    let t = (nf.log2().log2().ceil() as u32).max(1);
    TradeoffParams::new(k, t)
}

/// Runs the full Corollary 1.5 pipeline. `repetitions` defaults to
/// `⌈log₂ n⌉` when `None`.
pub fn cc_apsp(g: &Graph, seed: u64, repetitions: Option<usize>) -> CcApspRun {
    let n = g.n().max(2);
    let params = cc_apsp_params(n);
    let reps = repetitions.unwrap_or(((n as f64).log2().ceil() as usize).clamp(1, 64));
    let spanner_run = cc_spanner(g, params, seed, reps);

    // Disseminate: |E_S| edges of 4 words each must reach every node.
    let mut net = CcNetwork::new(n);
    let dissemination_rounds = net.disseminate_to_all(4 * spanner_run.result.size());
    let total_rounds = spanner_run.rounds + dissemination_rounds;

    let spanner = g.edge_subgraph(&spanner_run.result.edges);
    let stretch_bound = spanner_run.result.stretch_bound;
    CcApspRun {
        spanner_run,
        dissemination_rounds,
        total_rounds,
        spanner,
        stretch_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::edge::INFINITY;
    use spanner_graph::generators::{self, WeightModel};

    #[test]
    fn apsp_rows_respect_guarantee() {
        let g = generators::connected_erdos_renyi(128, 0.08, WeightModel::Uniform(1, 16), 3);
        let run = cc_apsp(&g, 7, None);
        let exact = dijkstra(&g, 5).dist;
        let approx = run.row(5);
        for v in 0..g.n() {
            if v != 5 && exact[v] != INFINITY && exact[v] > 0 {
                let ratio = approx[v] as f64 / exact[v] as f64;
                assert!(ratio >= 1.0 - 1e-9, "underestimate at {v}");
                assert!(
                    ratio <= run.stretch_bound + 1e-9,
                    "v={v}: {ratio} > {}",
                    run.stretch_bound
                );
            }
        }
    }

    #[test]
    fn dissemination_rounds_scale_with_spanner_size() {
        let g = generators::connected_erdos_renyi(128, 0.15, WeightModel::Unit, 5);
        let run = cc_apsp(&g, 9, Some(4));
        let expected = (4 * run.spanner_run.result.size()).div_ceil(g.n() - 1) as u64 + 2;
        assert_eq!(run.dissemination_rounds, expected);
        assert!(run.total_rounds > run.dissemination_rounds);
    }

    #[test]
    fn spanner_is_subgraph_sized_near_linearly() {
        let g = generators::connected_erdos_renyi(256, 0.2, WeightModel::Unit, 11);
        let run = cc_apsp(&g, 13, None);
        // O(n log log n) with slack; certainly far below m here.
        assert!(
            run.spanner.m() < g.m() / 2,
            "spanner {} vs m {}",
            run.spanner.m(),
            g.m()
        );
    }
}
