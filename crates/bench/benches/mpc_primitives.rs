//! Criterion timing of the MPC runtime primitives (experiment E9's
//! wall-clock side) and of the full distributed driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_runtime::{primitives, Dist, MpcConfig, MpcSystem};
use spanner_core::mpc_driver::mpc_general_spanner_with_config;
use spanner_core::TradeoffParams;
use spanner_graph::generators::{Family, WeightModel};

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_sort");
    for records in [10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, &m| {
            let cfg = MpcConfig::explicit(4096, m.div_ceil(4096) * 2, 8);
            let data: Vec<u64> = (0..m as u64).map(primitives::splitmix64).collect();
            b.iter(|| {
                let mut sys = MpcSystem::new(cfg);
                let d = Dist::distribute(&mut sys, data.clone()).unwrap();
                primitives::sort_by_key(&mut sys, d, "sort", |&x| x).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let m = 50_000usize;
    let cfg = MpcConfig::explicit(4096, m.div_ceil(4096) * 2, 8);
    let data: Vec<(u64, u64)> = (0..m as u64).map(|i| (i % 997, i)).collect();
    c.bench_function("mpc_aggregate_min_50k", |b| {
        b.iter(|| {
            let mut sys = MpcSystem::new(cfg);
            let d = Dist::distribute(&mut sys, data.clone()).unwrap();
            primitives::aggregate_by_key(&mut sys, d, "agg", |r| r.0, |r| r.1, |a, b| *a.min(b))
                .unwrap()
        })
    });
}

/// Thread-scaling probe for the runtime's hottest primitive: the same
/// distributed sample sort at 1 thread (the pre-parallelism baseline),
/// 2 threads, and the pool default. Shim splitting is capped via
/// `ThreadPool::install`, so all counts run in one process.
fn bench_sort_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_sort_threads");
    let m = 50_000usize;
    let cfg = MpcConfig::explicit(4096, m.div_ceil(4096) * 2, 8);
    let data: Vec<u64> = (0..m as u64).map(primitives::splitmix64).collect();
    let default_threads = rayon::current_num_threads();
    let mut counts = vec![1usize, 2, default_threads];
    counts.sort_unstable();
    counts.dedup();
    for threads in counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| {
                pool.install(|| {
                    let mut sys = MpcSystem::new(cfg);
                    let d = Dist::distribute(&mut sys, data.clone()).unwrap();
                    primitives::sort_by_key(&mut sys, d, "sort", |&x| x).unwrap()
                })
            })
        });
    }
    group.finish();
}

fn bench_driver(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 1024,
        avg_deg: 8.0,
    }
    .generate(WeightModel::Uniform(1, 32), 0xB3);
    let input_words = 4 * g.m() + 2 * g.n() + 64;
    let cfg = MpcConfig::explicit(2048, input_words.div_ceil(2048).max(2), 8);
    c.bench_function("mpc_driver_k8_t3_n1024", |b| {
        b.iter(|| mpc_general_spanner_with_config(&g, TradeoffParams::new(8, 3), cfg, 1).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sort, bench_aggregate, bench_sort_thread_scaling, bench_driver
);
criterion_main!(benches);
