//! Criterion timing of the APSP application (experiment E6's wall-clock
//! side): oracle construction, queries, and the verification Dijkstra.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_apsp::build_oracle;
use spanner_graph::generators::{Family, WeightModel};
use spanner_graph::shortest_paths::dijkstra;

fn bench_oracle_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp_oracle_build");
    for n in [512usize, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let g =
                Family::ErdosRenyi { n, avg_deg: 12.0 }.generate(WeightModel::PowersOfTwo(8), 0xA0);
            b.iter(|| build_oracle(&g, 1))
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 2048,
        avg_deg: 12.0,
    }
    .generate(WeightModel::PowersOfTwo(8), 0xA0);
    let oracle = build_oracle(&g, 1);
    c.bench_function("apsp_oracle_sssp_query", |b| {
        b.iter(|| oracle.distances_from(7))
    });
    c.bench_function("apsp_exact_dijkstra_baseline", |b| {
        b.iter(|| dijkstra(&g, 7))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_oracle_build, bench_query
);
criterion_main!(benches);
