//! Criterion timing of the APSP application (experiment E6's wall-clock
//! side): oracle construction, queries, the verification Dijkstra, and
//! the serving layer's query throughput per substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_apsp::{apsp_request, build_oracle};
use spanner_core::pipeline::QueryEngine;
use spanner_graph::generators::{Family, WeightModel};
use spanner_graph::shortest_paths::dijkstra;

fn bench_oracle_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp_oracle_build");
    for n in [512usize, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let g =
                Family::ErdosRenyi { n, avg_deg: 12.0 }.generate(WeightModel::PowersOfTwo(8), 0xA0);
            b.iter(|| build_oracle(&g, 1))
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 2048,
        avg_deg: 12.0,
    }
    .generate(WeightModel::PowersOfTwo(8), 0xA0);
    let oracle = build_oracle(&g, 1);
    c.bench_function("apsp_oracle_sssp_query", |b| {
        b.iter(|| oracle.distances_from(7))
    });
    c.bench_function("apsp_exact_dijkstra_baseline", |b| {
        b.iter(|| dijkstra(&g, 7))
    });
}

/// Point-query throughput of the serving layer, per query substrate:
/// Dijkstra-on-spanner (one traversal per distinct source in the batch)
/// vs Thorup–Zwick sketches (O(λ) per query after preprocessing).
fn bench_distance_queries(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 2048,
        avg_deg: 12.0,
    }
    .generate(WeightModel::PowersOfTwo(8), 0xA0);
    let n = g.n() as u32;
    let queries: Vec<(u32, u32)> = (0..512u32)
        .map(|i| ((i * 13) % 61, (i * 37 + 11) % n))
        .collect();
    let mut group = c.benchmark_group("distance_queries");
    for (label, engine) in [
        ("dijkstra", QueryEngine::Dijkstra),
        ("sketches_l2", QueryEngine::Sketches { levels: 2 }),
        ("sketches_l3", QueryEngine::Sketches { levels: 3 }),
    ] {
        let oracle = apsp_request(&g)
            .engine(engine)
            .seed(1)
            .build()
            .expect("build");
        group.bench_function(BenchmarkId::new("batch512", label), |b| {
            b.iter(|| oracle.query_batch(&queries))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_oracle_build, bench_query, bench_distance_queries
);
criterion_main!(benches);
