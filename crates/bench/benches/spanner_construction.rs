//! Criterion timing of the spanner constructions (the wall-clock side of
//! experiments E2/E3/E4/E5/E8; the model-cost side lives in the
//! experiment binaries), driven through the unified pipeline API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_core::pipeline::{Algorithm, SpannerRequest};
use spanner_core::unweighted_ok::UnweightedOkConfig;
use spanner_core::TradeoffParams;
use spanner_graph::generators::{Family, WeightModel};

fn run(request: &SpannerRequest<'_>) -> usize {
    request.run().expect("valid request").size()
}

fn bench_algorithms(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 2048,
        avg_deg: 12.0,
    }
    .generate(WeightModel::PowersOfTwo(8), 0xB0);
    let k = 16u32;

    let mut group = c.benchmark_group("spanner_construction");
    let cases = [
        ("baswana_sen", Algorithm::BaswanaSen { k }),
        ("cluster_merging", Algorithm::ClusterMerging { k }),
        ("sqrt_k", Algorithm::SqrtK { k }),
        (
            "general_log_k",
            Algorithm::General(TradeoffParams::log_k(k)),
        ),
    ];
    for (name, algorithm) in cases {
        let request = SpannerRequest::new(&g, algorithm).seed(1);
        group.bench_function(BenchmarkId::new(name, k), |b| b.iter(|| run(&request)));
    }
    group.finish();
}

fn bench_k_scaling(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 2048,
        avg_deg: 12.0,
    }
    .generate(WeightModel::Uniform(1, 64), 0xB1);
    let mut group = c.benchmark_group("general_spanner_k");
    for k in [4u32, 16, 64] {
        let request = SpannerRequest::new(&g, Algorithm::General(TradeoffParams::log_k(k))).seed(1);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| run(&request))
        });
    }
    group.finish();
}

fn bench_unweighted_ok(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 1024,
        avg_deg: 10.0,
    }
    .generate(WeightModel::Unit, 0xB2)
    .unweighted_copy();
    let request = SpannerRequest::new(
        &g,
        Algorithm::UnweightedOk {
            k: 3,
            config: UnweightedOkConfig::default(),
        },
    )
    .seed(1);
    c.bench_function("unweighted_ok_k3", |b| b.iter(|| run(&request)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithms, bench_k_scaling, bench_unweighted_ok
);
criterion_main!(benches);
