//! Criterion timing of the spanner constructions (the wall-clock side of
//! experiments E2/E3/E4/E5/E8; the model-cost side lives in the
//! experiment binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_core::baswana_sen::baswana_sen;
use spanner_core::cluster_merging::cluster_merging_spanner;
use spanner_core::sqrt_k::sqrt_k_spanner;
use spanner_core::unweighted_ok::{unweighted_ok_spanner, UnweightedOkConfig};
use spanner_core::{general_spanner, BuildOptions, TradeoffParams};
use spanner_graph::generators::{Family, WeightModel};

fn bench_algorithms(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 2048,
        avg_deg: 12.0,
    }
    .generate(WeightModel::PowersOfTwo(8), 0xB0);
    let k = 16u32;

    let mut group = c.benchmark_group("spanner_construction");
    group.bench_function(BenchmarkId::new("baswana_sen", k), |b| {
        b.iter(|| baswana_sen(&g, k, 1))
    });
    group.bench_function(BenchmarkId::new("cluster_merging", k), |b| {
        b.iter(|| cluster_merging_spanner(&g, k, 1))
    });
    group.bench_function(BenchmarkId::new("sqrt_k", k), |b| {
        b.iter(|| sqrt_k_spanner(&g, k, 1))
    });
    group.bench_function(BenchmarkId::new("general_log_k", k), |b| {
        b.iter(|| general_spanner(&g, TradeoffParams::log_k(k), 1, BuildOptions::default()))
    });
    group.finish();
}

fn bench_k_scaling(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 2048,
        avg_deg: 12.0,
    }
    .generate(WeightModel::Uniform(1, 64), 0xB1);
    let mut group = c.benchmark_group("general_spanner_k");
    for k in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| general_spanner(&g, TradeoffParams::log_k(k), 1, BuildOptions::default()))
        });
    }
    group.finish();
}

fn bench_unweighted_ok(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 1024,
        avg_deg: 10.0,
    }
    .generate(WeightModel::Unit, 0xB2)
    .unweighted_copy();
    c.bench_function("unweighted_ok_k3", |b| {
        b.iter(|| unweighted_ok_spanner(&g, 3, UnweightedOkConfig::default(), 1))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithms, bench_k_scaling, bench_unweighted_ok
);
criterion_main!(benches);
