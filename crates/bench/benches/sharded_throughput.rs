//! Criterion timing of the sharded serving tier and its async front
//! door: what do shards and the job queue cost (or buy) over a bare
//! `SpannerService`?
//!
//! Four shapes on the same workload (eight n = 512 Erdős–Rényi graphs,
//! warm stores, spanner store-hit jobs):
//!
//! * **blocking/1_shard** and **blocking/4_shards** — the synchronous
//!   job path through a `ShardedService`: one round over all eight
//!   graphs. The delta between the two is the routing overhead (ring
//!   lookup + per-shard locks); on a single-CPU container the 4-shard
//!   tier cannot also show its lock-contention win, so treat parity as
//!   the expected result there;
//! * **queued/1_shard** and **queued/4_shards** — the same round
//!   submitted through a `JobQueue` (2 workers) and drained with
//!   `wait`: measures the submit/dispatch/resolve machinery on top of
//!   the store hit.
//!
//! The queue's condvar handshake costs microseconds per job; the bar
//! is that `queued` stays within a small constant factor of `blocking`
//! for store-hit traffic, not that it wins — its purpose is
//! non-blocking submission and lane/fairness policy, not raw latency.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use spanner_core::pipeline::{
    Algorithm, GraphHandle, JobQueue, JobSpec, QueueConfig, ShardedService,
};
use spanner_core::TradeoffParams;
use spanner_graph::generators::{Family, WeightModel};
use spanner_graph::Graph;

fn workloads() -> Vec<Graph> {
    (0..8u64)
        .map(|s| {
            Family::ErdosRenyi {
                n: 512,
                avg_deg: 8.0,
            }
            .generate(WeightModel::Uniform(1, 32), 0xA11 + s)
        })
        .collect()
}

fn alg() -> Algorithm {
    Algorithm::General(TradeoffParams::new(8, 2))
}

fn warm_tier(shards: usize, graphs: &[Graph]) -> (Arc<ShardedService>, Vec<GraphHandle>) {
    let tier = Arc::new(ShardedService::new(shards));
    let handles: Vec<_> = graphs.iter().map(|g| tier.register(g.clone())).collect();
    for handle in &handles {
        tier.spanner(handle, alg())
            .seed(7)
            .run()
            .expect("warm-up build");
    }
    (tier, handles)
}

fn bench_sharded_throughput(c: &mut Criterion) {
    let graphs = workloads();
    let mut group = c.benchmark_group("sharded_throughput");

    for shards in [1usize, 4] {
        let (tier, handles) = warm_tier(shards, &graphs);
        group.bench_function(format!("blocking/{shards}_shard"), |b| {
            b.iter(|| {
                for handle in &handles {
                    tier.spanner(handle, alg())
                        .seed(7)
                        .run()
                        .expect("store hit");
                }
            })
        });

        let queue = JobQueue::start(
            Arc::clone(&tier),
            QueueConfig {
                workers: 2,
                batch_escape_every: 4,
            },
        );
        group.bench_function(format!("queued/{shards}_shard"), |b| {
            b.iter(|| {
                let ids: Vec<_> = handles
                    .iter()
                    .map(|handle| queue.submit(JobSpec::spanner(handle, alg()).seed(7)))
                    .collect();
                for id in ids {
                    queue.wait(id).expect("store hit");
                }
            })
        });

        println!(
            "{shards}-shard tier after benches: {} | queue: {}",
            tier.stats().summary(),
            queue.stats().summary()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_throughput);
criterion_main!(benches);
