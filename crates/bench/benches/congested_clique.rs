//! Criterion timing of the Congested Clique pipelines (experiment E7's
//! wall-clock side).

use congested_clique::cc_apsp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_core::pipeline::{Algorithm, Backend, SpannerRequest};
use spanner_core::TradeoffParams;
use spanner_graph::generators::{Family, WeightModel};

fn bench_cc_spanner(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 512,
        avg_deg: 10.0,
    }
    .generate(WeightModel::Uniform(1, 32), 0xCC);
    let params = TradeoffParams::new(8, 2);
    let mut group = c.benchmark_group("cc_spanner");
    for reps in [1usize, 9] {
        let request = SpannerRequest::new(&g, Algorithm::General(params))
            .on(Backend::CongestedClique { repetitions: reps })
            .seed(1);
        group.bench_with_input(BenchmarkId::from_parameter(reps), &reps, |b, _| {
            b.iter(|| request.run().expect("valid request").size())
        });
    }
    group.finish();
}

fn bench_cc_apsp(c: &mut Criterion) {
    let g = Family::ErdosRenyi {
        n: 256,
        avg_deg: 10.0,
    }
    .generate(WeightModel::Uniform(1, 16), 0xCD);
    c.bench_function("cc_apsp_n256", |b| b.iter(|| cc_apsp(&g, 1, Some(4))));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cc_spanner, bench_cc_apsp
);
criterion_main!(benches);
