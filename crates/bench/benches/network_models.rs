//! Criterion timing of the two MPC executors side by side: the loop
//! engine against the thread-per-machine engine under each network
//! model. The interesting number is the threaded engine's *overhead* —
//! real threads, a router, and a barrier per round buy the NetReport;
//! this measures what they cost in host wall-clock on identical work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpc_runtime::{primitives, Dist, ExecutorKind, MpcConfig, MpcSystem, NetworkModel};
use spanner_core::mpc_driver::mpc_general_spanner_with_executor;
use spanner_core::TradeoffParams;
use spanner_graph::generators::{Family, WeightModel};

fn executors() -> Vec<(&'static str, ExecutorKind)> {
    vec![
        ("loop", ExecutorKind::Loop),
        (
            "threaded_ideal",
            ExecutorKind::Threaded(NetworkModel::Ideal),
        ),
        (
            "threaded_full_mesh",
            ExecutorKind::Threaded(NetworkModel::FullMesh {
                latency_s: 100e-6,
                bytes_per_sec: 10e9,
            }),
        ),
        (
            "threaded_switched",
            ExecutorKind::Threaded(NetworkModel::Switched {
                bisection_bytes_per_sec: 50e9,
            }),
        ),
    ]
}

/// One distributed sample sort, the runtime's hottest primitive, on
/// each executor. Pool spawn + teardown is inside the measured loop on
/// purpose: that is what a pipeline run pays per `MpcSystem`.
fn bench_sort_by_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_sort_20k");
    let m = 20_000usize;
    let cfg = MpcConfig::explicit(4096, m.div_ceil(4096) * 2, 8);
    let data: Vec<u64> = (0..m as u64).map(primitives::splitmix64).collect();
    for (name, executor) in executors() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &executor, |b, &ex| {
            b.iter(|| {
                let mut sys = MpcSystem::with_executor(cfg, ex);
                let d = Dist::distribute(&mut sys, data.clone()).unwrap();
                primitives::sort_by_key(&mut sys, d, "sort", |&x| x).unwrap()
            })
        });
    }
    group.finish();
}

/// The full distributed spanner driver on each executor — the
/// end-to-end cost of simulating the cluster with real message motion.
fn bench_driver_by_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_driver_k6_t2_n512");
    let g = Family::ErdosRenyi {
        n: 512,
        avg_deg: 8.0,
    }
    .generate(WeightModel::Uniform(1, 32), 0xB4);
    let input_words = 4 * g.m() + 2 * g.n() + 64;
    let cfg = MpcConfig::explicit(2048, input_words.div_ceil(2048).max(2), 8);
    for (name, executor) in executors() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &executor, |b, &ex| {
            b.iter(|| {
                mpc_general_spanner_with_executor(&g, TradeoffParams::new(6, 2), cfg, ex, 1)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sort_by_executor, bench_driver_by_executor
);
criterion_main!(benches);
