//! Criterion timing of the long-lived serving layer: what does
//! register-once/serve-many buy over the one-shot API?
//!
//! Three shapes on the same workload (n = 1024 Erdős–Rényi, the
//! Corollary 1.4-style schedule, 512-query batches):
//!
//! * **cached_oracle** — `SpannerService` job against a warm store:
//!   the artifact is served from the budgeted LRU (the steady-state
//!   serving path). Expected to beat rebuild-per-request by far more
//!   than the acceptance bar of 10×;
//! * **rebuild_per_request** — the one-shot `DistanceRequest::build`
//!   every time, the pre-service architecture where every caller
//!   re-submits the graph and rebuilds the oracle;
//! * **spanner_job_hit** — the spanner-artifact flavour of the hit
//!   path (store lookup + `Arc` clone, no queries), isolating the
//!   service overhead itself.

use criterion::{criterion_group, criterion_main, Criterion};
use spanner_core::pipeline::{
    Algorithm, DistanceRequest, QueryEngine, ServiceConfig, SpannerService,
};
use spanner_core::TradeoffParams;
use spanner_graph::generators::{Family, WeightModel};
use spanner_graph::Graph;

fn workload() -> Graph {
    Family::ErdosRenyi {
        n: 1024,
        avg_deg: 10.0,
    }
    .generate(WeightModel::Uniform(1, 32), 0x5E7)
}

fn alg() -> Algorithm {
    Algorithm::General(TradeoffParams::new(8, 2))
}

fn queries(n: u32) -> Vec<(u32, u32)> {
    (0..512u32)
        .map(|i| ((i.wrapping_mul(2654435761)) % n, (i * 37 + 11) % n))
        .collect()
}

fn bench_service_throughput(c: &mut Criterion) {
    let g = workload();
    let q = queries(g.n() as u32);
    let engine = QueryEngine::Sketches { levels: 2 };

    let service = SpannerService::with_config(ServiceConfig::default());
    let handle = service.register(g.clone());
    // Warm the store so the cached path measures steady state.
    service
        .oracle(&handle, alg())
        .engine(engine)
        .seed(7)
        .build()
        .expect("warm-up build");
    service
        .spanner(&handle, alg())
        .seed(7)
        .run()
        .expect("warm-up run");

    let mut group = c.benchmark_group("service_throughput");
    group.bench_function("cached_oracle/512_queries", |b| {
        b.iter(|| {
            let oracle = service
                .oracle(&handle, alg())
                .engine(engine)
                .seed(7)
                .build()
                .expect("store hit");
            oracle.query_batch(&q)
        })
    });
    group.bench_function("rebuild_per_request/512_queries", |b| {
        b.iter(|| {
            let oracle = DistanceRequest::new(&g, alg())
                .engine(engine)
                .seed(7)
                .build()
                .expect("one-shot rebuild");
            oracle.query_batch(&q)
        })
    });
    group.bench_function("spanner_job_hit", |b| {
        b.iter(|| {
            service
                .spanner(&handle, alg())
                .seed(7)
                .run()
                .expect("store hit")
        })
    });
    group.finish();

    let stats = service.stats();
    println!(
        "service stats after benches: {} (hit rate {:.1}%)",
        stats.summary(),
        100.0 * stats.hit_rate()
    );
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
