//! Criterion timing of the pipeline's `Batch` API — the serving-shaped
//! workload: many independent `SpannerRequest`s executed concurrently
//! through the rayon pool.
//!
//! Two axes:
//!
//! * **thread scaling** — the same batch under a 1-thread pool vs the
//!   process default (`RAYON_NUM_THREADS`), via `ThreadPool::install`,
//!   so both counts run in one process;
//! * **batch composition** — a homogeneous batch (one algorithm, many
//!   seeds: the `best_of` amplification shape) vs a mixed batch
//!   (several algorithms × backends: the cross-model comparison shape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_core::pipeline::{Algorithm, Backend, Batch, SpannerRequest};
use spanner_core::TradeoffParams;
use spanner_graph::generators::{Family, WeightModel};
use spanner_graph::Graph;

fn workload() -> Graph {
    Family::ErdosRenyi {
        n: 1024,
        avg_deg: 10.0,
    }
    .generate(WeightModel::Uniform(1, 32), 0xBA7C)
}

fn homogeneous(g: &Graph, requests: usize) -> Batch<'_> {
    (0..requests as u64)
        .map(|seed| SpannerRequest::new(g, Algorithm::General(TradeoffParams::log_k(8))).seed(seed))
        .collect()
}

fn mixed(g: &Graph) -> Batch<'_> {
    let params = TradeoffParams::new(8, 2);
    Batch::new()
        .with(SpannerRequest::new(g, Algorithm::General(params)).seed(1))
        .with(SpannerRequest::new(g, Algorithm::ClusterMerging { k: 8 }).seed(1))
        .with(
            SpannerRequest::new(g, Algorithm::General(params))
                .on(Backend::Streaming)
                .seed(1),
        )
        .with(
            SpannerRequest::new(g, Algorithm::General(params))
                .on(Backend::Pram)
                .seed(1),
        )
        .with(
            SpannerRequest::new(g, Algorithm::General(params))
                .on(Backend::congested_clique())
                .seed(1),
        )
        .with(SpannerRequest::new(g, Algorithm::BaswanaSen { k: 8 }).seed(1))
}

fn run_batch(batch: &Batch<'_>) -> usize {
    batch
        .run()
        .into_iter()
        .map(|r| r.expect("valid request").size())
        .sum()
}

fn bench_batch_threads(c: &mut Criterion) {
    let g = workload();
    let batch = homogeneous(&g, 8);
    let default_threads = rayon::current_num_threads();
    let mut group = c.benchmark_group("pipeline_batch_threads");
    for threads in [1usize, default_threads] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        group.bench_with_input(
            BenchmarkId::new("batch8_general_log_k", threads),
            &threads,
            |b, _| b.iter(|| pool.install(|| run_batch(&batch))),
        );
    }
    group.finish();
}

fn bench_batch_mixed(c: &mut Criterion) {
    let g = workload();
    let batch = mixed(&g);
    c.bench_function("pipeline_batch_mixed_backends", |b| {
        b.iter(|| run_batch(&batch))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_threads, bench_batch_mixed
);
criterion_main!(benches);
