//! Pins the "zero release-mode overhead" claim of the tracked sync
//! layer: in the default (passthrough) build, `TrackedMutex` /
//! `TrackedCondvar` are `#[inline]` newtypes over `std::sync`, so
//! uncontended lock/unlock and a condvar ping-pong must cost the same
//! as the raw primitives. Run both rows and compare:
//!
//! ```text
//! cargo bench -p spanner-bench --bench sync_overhead
//! ```
//!
//! (Under `--features lock-audit` the tracked rows pay for the
//! lock-order graph on purpose — that build is a debugging tool, not a
//! shipping configuration; the bench still runs there if you want the
//! instrumented numbers.)

use std::sync::{Condvar, Mutex};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spanner_sync::{TrackedCondvar, TrackedMutex};

/// One uncontended lock/increment/unlock — the hot-path shape of every
/// queue and store operation in the pipeline.
fn bench_uncontended_mutex(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncontended_lock");

    let raw = Mutex::new(0u64);
    group.bench_function("raw_std_mutex", |b| {
        b.iter(|| {
            let mut g = raw.lock().unwrap();
            *g = black_box(*g).wrapping_add(1);
        })
    });

    let tracked = TrackedMutex::new("bench.mutex", 0u64);
    group.bench_function("tracked_mutex", |b| {
        b.iter(|| {
            let mut g = tracked.lock();
            *g = black_box(*g).wrapping_add(1);
        })
    });

    group.finish();
}

/// A notify with no waiter plus a flag flip under the lock — the
/// resolution-side shape of the JobQueue (`resolve` → `notify_all`).
fn bench_notify_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("notify_no_waiter");

    let raw = (Mutex::new(0u64), Condvar::new());
    group.bench_function("raw_std_condvar", |b| {
        b.iter(|| {
            *raw.0.lock().unwrap() = black_box(1);
            raw.1.notify_all();
        })
    });

    let tracked = (
        TrackedMutex::new("bench.cv_mutex", 0u64),
        TrackedCondvar::new("bench.cv"),
    );
    group.bench_function("tracked_condvar", |b| {
        b.iter(|| {
            *tracked.0.lock() = black_box(1);
            tracked.1.notify_all();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_uncontended_mutex, bench_notify_path);
criterion_main!(benches);
