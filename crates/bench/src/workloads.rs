//! Canonical workload sets shared by the experiment binaries, so tables
//! across experiments are comparable.

use spanner_graph::generators::{Family, WeightModel};
use spanner_graph::Graph;

/// The standard weighted workload battery (verification-sized).
pub fn weighted_battery() -> Vec<(String, Graph)> {
    let families = [
        (
            Family::ErdosRenyi {
                n: 1024,
                avg_deg: 12.0,
            },
            WeightModel::PowersOfTwo(10),
        ),
        (
            Family::Geometric {
                n: 1024,
                radius: 0.06,
            },
            WeightModel::Unit,
        ), // Euclidean weights
        (Family::Torus { side: 32 }, WeightModel::Uniform(1, 64)),
        (
            Family::PowerLaw {
                n: 1024,
                avg_deg: 10.0,
            },
            WeightModel::Uniform(1, 64),
        ),
    ];
    families
        .iter()
        .map(|(f, w)| {
            let w = if matches!(f, Family::Geometric { .. }) {
                WeightModel::Uniform(1, 1) // Family::generate swaps in Euclidean weights
            } else {
                *w
            };
            (f.name(), f.generate(w, 0xBEEF))
        })
        .collect()
}

/// The standard unweighted battery (for Appendix B and the unweighted
/// comparisons).
pub fn unweighted_battery() -> Vec<(String, Graph)> {
    [
        Family::ErdosRenyi {
            n: 1024,
            avg_deg: 10.0,
        },
        Family::Hypercube { d: 10 },
        Family::PowerLaw {
            n: 1024,
            avg_deg: 8.0,
        },
        Family::CliqueChain {
            cliques: 32,
            size: 16,
        },
    ]
    .iter()
    .map(|f| {
        (
            f.name(),
            f.generate(WeightModel::Unit, 0xFEED).unweighted_copy(),
        )
    })
    .collect()
}

/// One mid-size weighted Erdős–Rényi instance (the default single-graph
/// subject when a whole battery would be overkill).
pub fn default_er(n: usize) -> Graph {
    Family::ErdosRenyi { n, avg_deg: 12.0 }.generate(WeightModel::PowersOfTwo(8), 0xE12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batteries_are_nonempty_and_connected_enough() {
        for (name, g) in weighted_battery() {
            assert!(g.n() > 0 && g.m() > 0, "{name}");
        }
        for (name, g) in unweighted_battery() {
            assert!(g.is_unweighted(), "{name}");
        }
    }

    #[test]
    fn default_er_sized() {
        let g = default_er(512);
        assert_eq!(g.n(), 512);
        assert!(g.m() > 512);
    }
}
