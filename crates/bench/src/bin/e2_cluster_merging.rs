//! **E2 — Theorem 4.14**: the cluster-cluster merging algorithm
//! (`t = 1`): `⌈log₂ k⌉` epochs, stretch ≤ `k^{log 3}`, size
//! `O(n^{1+1/k} log k)` — predicted vs measured over a `k` sweep.

use spanner_bench::table::{f2, Table};
use spanner_bench::{measure, size_baseline, workloads};
use spanner_core::cluster_merging::cluster_merging_spanner;

fn main() {
    println!("# E2 — Theorem 4.14 (cluster-cluster merging, t = 1)\n");
    for (name, g) in workloads::weighted_battery() {
        println!("## workload {name} (n={}, m={})\n", g.n(), g.m());
        let mut t = Table::new(&[
            "k",
            "epochs",
            "log2 k",
            "stretch",
            "k^log3",
            "size",
            "size/(n^(1+1/k)·log k)",
            "valid",
        ]);
        for k in [2u32, 4, 8, 16, 32] {
            let r = cluster_merging_spanner(&g, k, 0xE2);
            let m = measure(&g, &r.edges, 24, 2);
            let logk = (k as f64).log2().max(1.0);
            t.row(vec![
                k.to_string(),
                r.epochs.to_string(),
                format!("{:.0}", logk.ceil()),
                f2(m.stretch),
                f2((k as f64).powf(3f64.log2())),
                m.size.to_string(),
                f2(m.size as f64 / (size_baseline(g.n(), k) * logk)),
                m.valid.to_string(),
            ]);
        }
        t.print();
        println!();
    }
}
