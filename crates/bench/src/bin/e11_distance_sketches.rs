//! **E11 — extension (§1.2 / \[DN19])**: distance sketches preprocessed
//! on a spanner instead of the full graph.
//!
//! The paper motivates spanners as the tool that lets MPC preprocess
//! distance sketches without extra memory: the preprocessing touches
//! `Õ(n)` spanner edges instead of `m`. This experiment builds
//! Thorup–Zwick sketches (λ levels, `2λ−1` stretch) on (a) the graph
//! and (b) a Section 5 spanner — the latter through the pipeline's
//! distance stage (`DistanceRequest` + `QueryEngine::Sketches`) — and
//! measures preprocessing size vs query accuracy, including the dropped
//! -query counter (0 by construction since every component owns a
//! top-level landmark).

use spanner_apsp::{evaluate_sketch_oracle, evaluate_sketches};
use spanner_bench::table::{f2, Table};
use spanner_bench::workloads;
use spanner_core::pipeline::{Algorithm, DistanceRequest, QueryEngine};
use spanner_core::TradeoffParams;

fn main() {
    println!("# E11 — distance sketches on spanners (the [DN19] application)\n");
    let g = workloads::default_er(768);
    println!("workload er(n={}, m={}), weighted\n", g.n(), g.m());

    let mut t = Table::new(&[
        "substrate",
        "lambda",
        "preproc edges",
        "sketch entries",
        "avg ratio",
        "max ratio",
        "failed",
        "guarantee",
    ]);
    for lambda in [2u32, 3] {
        // (a) preprocess on the full graph.
        let full = evaluate_sketches(&g, &g, 1.0, lambda, 12, 0xE11);
        t.row(vec![
            "full graph".into(),
            lambda.to_string(),
            full.preprocessing_edges.to_string(),
            full.sketch_entries.to_string(),
            f2(full.avg_ratio),
            f2(full.max_ratio),
            full.failed_queries.to_string(),
            f2(full.guarantee),
        ]);
        // (b) preprocess on a k=4 spanner, served through the pipeline's
        // distance stage.
        let oracle = DistanceRequest::new(&g, Algorithm::General(TradeoffParams::new(4, 2)))
            .engine(QueryEngine::Sketches { levels: lambda })
            .seed(0xE11)
            .build()
            .expect("sequential build");
        let rep = evaluate_sketch_oracle(&g, &oracle, 12, 0xE11);
        t.row(vec![
            format!("spanner k=4 ({} edges)", oracle.size()),
            lambda.to_string(),
            rep.preprocessing_edges.to_string(),
            rep.sketch_entries.to_string(),
            f2(rep.avg_ratio),
            f2(rep.max_ratio),
            rep.failed_queries.to_string(),
            f2(rep.guarantee),
        ]);
        assert_eq!(
            full.failed_queries + rep.failed_queries,
            0,
            "connected pairs must never drop"
        );
    }
    t.print();
    println!("\n(spanner substrate: fewer preprocessing edges, composed guarantee σ·(2λ−1))");
}
