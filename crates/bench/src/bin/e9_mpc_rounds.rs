//! **E9 — Section 6 / Theorem 1.1**: measured MPC rounds.
//!
//! Two measurements on the simulator (rounds counted by executing the
//! communication, memory constraints enforced):
//!
//! 1. primitive costs (sort / find-min aggregation / segmented
//!    broadcast) as the machine memory `S` shrinks — the `O(1/γ)`
//!    (= `O(log_S N)`) scaling;
//! 2. end-to-end distributed spanner runs: total rounds, rounds per
//!    grow iteration, and the bit-for-bit agreement with the sequential
//!    reference.

use mpc_runtime::{comm, primitives, Dist, ExecutorKind, MpcConfig, MpcSystem, NetworkModel};
use spanner_bench::table::{f2, Table};
use spanner_bench::workloads;
use spanner_core::mpc_driver::{
    mpc_general_spanner_with_config, mpc_general_spanner_with_executor,
};
use spanner_core::{general_spanner, BuildOptions, TradeoffParams};

fn main() {
    println!("# E9 — Section 6 implementation layer (measured rounds)\n");

    println!("## Primitive round costs vs machine memory S (N = 65536 words)\n");
    let n_records: usize = 65_536;
    let mut t = Table::new(&[
        "S (words)",
        "machines P",
        "log_S N",
        "sort rounds",
        "find-min rounds",
        "scan rounds",
        "route rounds",
    ]);
    for s in [512usize, 1024, 2048, 4096, 16384] {
        let cfg = MpcConfig::explicit(s, n_records.div_ceil(s) * 2, 8);
        let data: Vec<u64> = (0..n_records as u64)
            .map(|i| primitives::splitmix64(i) % 10_000)
            .collect();

        let mut sys = MpcSystem::new(cfg);
        let d = Dist::distribute(&mut sys, data.clone()).unwrap();
        sys.reset_metrics();
        let sorted = primitives::sort_by_key(&mut sys, d, "sort", |&x| x).unwrap();
        let sort_rounds = sys.rounds();

        sys.reset_metrics();
        let _ = primitives::aggregate_by_key(
            &mut sys,
            sorted.clone(),
            "min",
            |&x| x % 97,
            |&x| x,
            |a, b| *a.min(b),
        )
        .unwrap();
        let min_rounds = sys.rounds();

        sys.reset_metrics();
        let per: Vec<u64> = vec![1; sys.machines()];
        let _ = comm::machine_scan(&mut sys, per, 0, "scan", |a, b| a + b).unwrap();
        let scan_rounds = sys.rounds();

        sys.reset_metrics();
        let p = sys.machines();
        let _ = comm::route(&mut sys, sorted, "route", move |&x, _| {
            (primitives::splitmix64(x) % p as u64) as usize
        })
        .unwrap();
        let route_rounds = sys.rounds();

        t.row(vec![
            s.to_string(),
            cfg.num_machines.to_string(),
            f2((n_records as f64).ln() / (s as f64).ln()),
            sort_rounds.to_string(),
            min_rounds.to_string(),
            scan_rounds.to_string(),
            route_rounds.to_string(),
        ]);
    }
    t.print();

    println!("\n## End-to-end distributed runs (k=8, t=3; er n=2048)\n");
    let g = workloads::default_er(2048);
    let params = TradeoffParams::new(8, 3);
    let seq = general_spanner(&g, params, 0xE9, BuildOptions::default());
    let input_words = 4 * g.m() + 2 * g.n() + 64;
    let mut t2 = Table::new(&[
        "S (words)",
        "P",
        "rounds",
        "iters",
        "rounds/iter",
        "peak mem (w)",
        "cap (w)",
        "spanner",
        "matches seq",
    ]);
    for s in [1024usize, 2048, 4096, 8192] {
        let cfg = MpcConfig::explicit(s, input_words.div_ceil(s).max(2), 8);
        let run = mpc_general_spanner_with_config(&g, params, cfg, 0xE9).unwrap();
        t2.row(vec![
            s.to_string(),
            cfg.num_machines.to_string(),
            run.metrics.rounds.to_string(),
            run.result.iterations.to_string(),
            f2(run.metrics.rounds as f64 / run.result.iterations.max(1) as f64),
            run.metrics.peak_machine_words.to_string(),
            cfg.capacity().to_string(),
            run.result.size().to_string(),
            (run.result.edges == seq.edges).to_string(),
        ]);
    }
    t2.print();

    println!("\n## Rounds by primitive (S = 2048 run above)\n");
    let cfg = MpcConfig::explicit(2048, input_words.div_ceil(2048).max(2), 8);
    let run = mpc_general_spanner_with_config(&g, params, cfg, 0xE9).unwrap();
    let mut t3 = Table::new(&["primitive", "rounds"]);
    for (op, rounds) in &run.metrics.rounds_by_op {
        t3.row(vec![op.to_string(), rounds.to_string()]);
    }
    t3.print();

    println!("\n## Predicted wall-clock under network models (S = 4096, threaded executor)\n");
    let cfg = MpcConfig::explicit(4096, input_words.div_ceil(4096).max(2), 8);
    let mut t4 = Table::new(&["S (words)", "P", "rounds", "network", "predicted"]);
    for model in [
        NetworkModel::FullMesh {
            latency_s: 100e-6,
            bytes_per_sec: 10e9,
        },
        NetworkModel::FullMesh {
            latency_s: 2e-3,
            bytes_per_sec: 1e9,
        },
    ] {
        let run =
            mpc_general_spanner_with_executor(&g, params, cfg, ExecutorKind::Threaded(model), 0xE9)
                .unwrap();
        assert_eq!(
            run.result.edges, seq.edges,
            "threaded executor must rebuild the sequential spanner bit for bit"
        );
        let report = run.net.as_ref().expect("threaded runs carry a NetReport");
        t4.row(vec![
            "4096".to_string(),
            cfg.num_machines.to_string(),
            run.metrics.rounds.to_string(),
            model.label(),
            format!("{:.4}s", report.total_seconds),
        ]);
    }
    t4.print();
    println!("\n(simulated seconds: each round charged latency + critical-link bytes/bandwidth;");
    println!(" both runs asserted bit-identical to the sequential reference)");
}
