//! **E3 — Theorems 3.1/3.4**: the two-phase `√k` algorithm: `O(√k)`
//! grow iterations, stretch `O(k)`, size `O(√k·n^{1+1/k})`.

use spanner_bench::table::{f2, Table};
use spanner_bench::{measure, size_baseline, workloads};
use spanner_core::sqrt_k::sqrt_k_spanner;

fn main() {
    println!("# E3 — Theorem 3.1/3.4 (two-phase sqrt-k algorithm)\n");
    for (name, g) in workloads::weighted_battery() {
        println!("## workload {name} (n={}, m={})\n", g.n(), g.m());
        let mut t = Table::new(&[
            "k",
            "iters",
            "2*ceil(sqrt k)",
            "stretch",
            "stretch/k",
            "bound",
            "size",
            "size/(sqrt(k)*n^(1+1/k))",
            "valid",
        ]);
        for k in [4u32, 9, 16, 25, 36] {
            let r = sqrt_k_spanner(&g, k, 0xE3);
            let m = measure(&g, &r.edges, 24, 3);
            let sq = (k as f64).sqrt();
            t.row(vec![
                k.to_string(),
                r.iterations.to_string(),
                format!("{:.0}", 2.0 * sq.ceil()),
                f2(m.stretch),
                f2(m.stretch / k as f64),
                f2(r.stretch_bound),
                m.size.to_string(),
                f2(m.size as f64 / (sq * size_baseline(g.n(), k))),
                m.valid.to_string(),
            ]);
        }
        t.print();
        println!();
    }
}
