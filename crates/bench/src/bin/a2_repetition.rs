//! **A2 — ablation**: the Section 8 parallel-repetition trick.
//!
//! The single-run algorithm guarantees spanner size only in
//! *expectation*; Theorem 8.1 amplifies to w.h.p. by running `O(log n)`
//! coin sequences per iteration and committing to the best. This
//! ablation measures the size distribution across seeds with and
//! without the amplification: the mean barely moves, but the worst case
//! (the tail the w.h.p. claim is about) tightens.

use congested_clique::cc_spanner;
use spanner_bench::table::{f2, Table};
use spanner_core::TradeoffParams;
use spanner_graph::generators::{Family, WeightModel};

fn main() {
    println!("# A2 — parallel repetition (Theorem 8.1 amplification)\n");
    let g = Family::ErdosRenyi {
        n: 512,
        avg_deg: 14.0,
    }
    .generate(WeightModel::Uniform(1, 32), 0xA2);
    println!(
        "workload er(n={}, m={}), k=4, t=2, 24 seeds\n",
        g.n(),
        g.m()
    );
    let params = TradeoffParams::new(4, 2);
    let seeds: Vec<u64> = (0..24).collect();

    let mut t = Table::new(&[
        "repetitions",
        "mean size",
        "max size",
        "min size",
        "max/mean",
        "mean cc rounds",
    ]);
    for reps in [1usize, 4, 9] {
        let runs: Vec<_> = seeds
            .iter()
            .map(|&s| cc_spanner(&g, params, s, reps))
            .collect();
        let sizes: Vec<usize> = runs.iter().map(|r| r.result.size()).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        let rounds = runs.iter().map(|r| r.rounds).sum::<u64>() as f64 / runs.len() as f64;
        t.row(vec![
            reps.to_string(),
            f2(mean),
            max.to_string(),
            min.to_string(),
            f2(max as f64 / mean),
            f2(rounds),
        ]);
    }
    t.print();
}
