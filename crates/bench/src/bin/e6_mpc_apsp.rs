//! **E6 — Corollary 1.4**: approximate APSP in near-linear-memory MPC.
//!
//! Runs the full Section 7 pipeline *in-model* through the distance
//! stage (construction through the simulator + the gather-to-one-machine
//! round, charged as exactly "+1") and measures the empirical
//! approximation ratio against exact Dijkstra, next to the `O(log^s n)`
//! guarantee.

use spanner_apsp::{apsp_request, measure_distance_oracle};
use spanner_bench::table::{f2, Table};
use spanner_core::pipeline::{Backend, MpcDeployment};
use spanner_graph::generators::{Family, WeightModel};

fn main() {
    println!("# E6 — Corollary 1.4 (MPC APSP, near-linear regime)\n");
    let mut t = Table::new(&[
        "n",
        "m",
        "k",
        "t",
        "mpc rounds",
        "gather rounds",
        "oracle edges",
        "edges/(n·loglog n)",
        "approx avg",
        "approx max",
        "guarantee",
    ]);
    for n in [256usize, 512, 1024] {
        let g = Family::ErdosRenyi { n, avg_deg: 12.0 }.generate(WeightModel::PowersOfTwo(8), 0xE6);
        let params = spanner_apsp::oracle::apsp_params(n);
        let oracle = apsp_request(&g)
            .on(Backend::Mpc(MpcDeployment::NearLinear))
            .seed(0x6E)
            .build()
            .expect("in-model APSP");
        let stats = oracle.stats();
        let metrics = &stats.execution.mpc().expect("mpc stats").metrics;
        let rep = measure_distance_oracle(&g, &oracle, 24, 6);
        let loglog = (n as f64).log2().log2();
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            params.k.to_string(),
            params.t.to_string(),
            metrics.rounds.to_string(),
            stats
                .gather_rounds
                .expect("mpc pays the gather")
                .to_string(),
            oracle.size().to_string(),
            f2(oracle.size() as f64 / (n as f64 * loglog)),
            f2(rep.avg_ratio),
            f2(rep.max_ratio),
            f2(rep.guarantee),
        ]);
    }
    t.print();
    println!("\n(guarantee = 2·k^s with k = ceil(log2 n), s = log(2t+1)/log(t+1);");
    println!(" mpc rounds include the single gather round)");
}
