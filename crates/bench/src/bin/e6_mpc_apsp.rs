//! **E6 — Corollary 1.4**: approximate APSP in near-linear-memory MPC.
//!
//! Runs the full Section 7 pipeline *in-model* through the distance
//! stage (construction through the simulator + the gather-to-one-machine
//! round, charged as exactly "+1") and measures the empirical
//! approximation ratio against exact Dijkstra, next to the `O(log^s n)`
//! guarantee.

use spanner_apsp::{apsp_request, measure_distance_oracle};
use spanner_bench::table::{f2, Table};
use spanner_core::pipeline::{Backend, MpcDeployment, NetworkModel};
use spanner_graph::generators::{Family, WeightModel};

fn main() {
    println!("# E6 — Corollary 1.4 (MPC APSP, near-linear regime)\n");
    let mut t = Table::new(&[
        "n",
        "m",
        "k",
        "t",
        "mpc rounds",
        "gather rounds",
        "oracle edges",
        "edges/(n·loglog n)",
        "approx avg",
        "approx max",
        "guarantee",
    ]);
    for n in [256usize, 512, 1024] {
        let g = Family::ErdosRenyi { n, avg_deg: 12.0 }.generate(WeightModel::PowersOfTwo(8), 0xE6);
        let params = spanner_apsp::oracle::apsp_params(n);
        let oracle = apsp_request(&g)
            .on(Backend::mpc_deployment(MpcDeployment::NearLinear))
            .seed(0x6E)
            .build()
            .expect("in-model APSP");
        let stats = oracle.stats();
        let metrics = &stats.execution.mpc().expect("mpc stats").metrics;
        let rep = measure_distance_oracle(&g, &oracle, 24, 6);
        let loglog = (n as f64).log2().log2();
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            params.k.to_string(),
            params.t.to_string(),
            metrics.rounds.to_string(),
            stats
                .gather_rounds
                .expect("mpc pays the gather")
                .to_string(),
            oracle.size().to_string(),
            f2(oracle.size() as f64 / (n as f64 * loglog)),
            f2(rep.avg_ratio),
            f2(rep.max_ratio),
            f2(rep.guarantee),
        ]);
    }
    t.print();
    println!("\n(guarantee = 2·k^s with k = ceil(log2 n), s = log(2t+1)/log(t+1);");
    println!(" mpc rounds include the single gather round)");

    // Re-run the largest build on the threaded executor under two
    // cluster shapes: predicted wall-clock next to the round count.
    println!("\n## Predicted cluster latency (threaded executor, FullMesh)\n");
    let n = 1024usize;
    let g = Family::ErdosRenyi { n, avg_deg: 12.0 }.generate(WeightModel::PowersOfTwo(8), 0xE6);
    let reference = apsp_request(&g)
        .on(Backend::mpc_deployment(MpcDeployment::NearLinear))
        .seed(0x6E)
        .build()
        .expect("loop-executor reference");
    let mut t = Table::new(&["n", "network", "rounds", "predicted wall-clock"]);
    for model in [
        NetworkModel::FullMesh {
            latency_s: 100e-6,
            bytes_per_sec: 10e9,
        },
        NetworkModel::FullMesh {
            latency_s: 2e-3,
            bytes_per_sec: 1e9,
        },
    ] {
        let oracle = apsp_request(&g)
            .on(Backend::mpc_deployment(MpcDeployment::NearLinear).threaded(model))
            .seed(0x6E)
            .build()
            .expect("threaded APSP");
        assert_eq!(
            oracle.spanner_edges(),
            reference.spanner_edges(),
            "threaded executor must be bit-identical to the loop executor"
        );
        let stats = oracle.stats().execution.mpc().expect("mpc stats");
        t.row(vec![
            n.to_string(),
            model.label(),
            stats.metrics.rounds.to_string(),
            format!(
                "{:.4}s",
                stats.predicted_time.expect("threaded runs predict")
            ),
        ]);
    }
    t.print();
    println!("\n(predictions are simulated seconds from the network model;");
    println!(" both runs are asserted bit-identical to the loop executor)");
}
