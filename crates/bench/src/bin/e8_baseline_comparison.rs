//! **E8 — baseline head-to-head**: Baswana–Sen (`k` iterations,
//! stretch `2k−1`) against the paper's constructions, over a `k` sweep.
//! The shape to reproduce: the paper's algorithms use exponentially
//! fewer iterations, Baswana–Sen keeps a modestly better stretch, sizes
//! are comparable — and the gap in iterations *widens* with `k`.

use spanner_bench::table::{f2, Table};
use spanner_bench::{measure, workloads};
use spanner_core::baswana_sen::baswana_sen;
use spanner_core::cluster_merging::cluster_merging_spanner;
use spanner_core::sqrt_k::sqrt_k_spanner;
use spanner_core::{general_spanner, BuildOptions, TradeoffParams};

fn main() {
    println!("# E8 — Baswana–Sen baseline vs the paper's algorithms\n");
    let g = workloads::default_er(1024);
    println!("workload er(n={}, m={}), weighted\n", g.n(), g.m());
    let mut t = Table::new(&[
        "k",
        "algorithm",
        "iters",
        "stretch",
        "stretch bound",
        "size",
        "valid",
    ]);
    for k in [4u32, 8, 16, 32, 64] {
        let runs = vec![
            baswana_sen(&g, k, 0xE8),
            sqrt_k_spanner(&g, k, 0xE8),
            general_spanner(&g, TradeoffParams::log_k(k), 0xE8, BuildOptions::default()),
            cluster_merging_spanner(&g, k, 0xE8),
        ];
        for r in runs {
            let m = measure(&g, &r.edges, 16, 8);
            t.row(vec![
                k.to_string(),
                r.algorithm.clone(),
                r.iterations.to_string(),
                f2(m.stretch),
                f2(r.stretch_bound),
                m.size.to_string(),
                m.valid.to_string(),
            ]);
        }
    }
    t.print();
}
