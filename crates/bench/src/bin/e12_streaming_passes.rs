//! **E12 — Section 2.4**: the dynamic-stream comparison.
//!
//! \[AGM12] build `k^{log 5}`-stretch spanners of size `Õ(n^{1+1/k})` in
//! `log k` passes, unweighted only. The paper's contraction framework in
//! the same `log k` passes achieves `k^{log 3}` — on weighted graphs —
//! and `k^{1+o(1)}` with `O(log²k/log log k)` passes. This experiment
//! measures passes and stretch for both schedules, with the AGM12
//! exponent quoted for reference.

use spanner_bench::table::{f2, Table};
use spanner_bench::{measure, workloads};
use spanner_core::streaming::streaming_spanner;
use spanner_core::TradeoffParams;

fn main() {
    println!("# E12 — Section 2.4: dynamic-stream passes\n");
    let g = workloads::default_er(1024);
    println!("workload er(n={}, m={}), weighted\n", g.n(), g.m());
    let mut t = Table::new(&[
        "schedule",
        "k",
        "passes",
        "stretch exponent s",
        "AGM12 exponent",
        "measured stretch",
        "k^s (ours)",
        "k^log5 (AGM12)",
        "size",
        "valid",
    ]);
    for k in [8u32, 16, 32] {
        for (label, params) in [
            ("t=1 (log k passes)", TradeoffParams::cluster_merging(k)),
            ("t=log k", TradeoffParams::log_k(k)),
        ] {
            let run = streaming_spanner(&g, params, 0x12);
            let m = measure(&g, &run.result.edges, 16, 12);
            t.row(vec![
                label.into(),
                k.to_string(),
                run.passes.to_string(),
                f2(run.quoted_stretch_exponent),
                f2(5f64.log2()),
                f2(m.stretch),
                f2((k as f64).powf(run.quoted_stretch_exponent)),
                f2((k as f64).powf(5f64.log2())),
                m.size.to_string(),
                m.valid.to_string(),
            ]);
        }
    }
    t.print();
    println!("\n(AGM12 is unweighted-only; this table is on a weighted stream)");
}
