//! **A1 — ablation**: per-epoch cluster radius growth.
//!
//! Section 2.3's intuition — and Corollary 5.9's law — is that the
//! cluster radius grows by a factor `2t+1` per epoch:
//! `r(i) ≤ ((2t+1)^i − 1)/2`. We measure the max super-node radius (in
//! hops, on the original graph) after every contraction, on a
//! high-diameter workload where radii actually grow.

use spanner_bench::table::{f2, Table};
use spanner_core::{general_spanner, BuildOptions, TradeoffParams};
use spanner_graph::generators::{torus, WeightModel};

fn main() {
    println!("# A1 — radius growth per epoch (Corollary 5.9: r(i) <= ((2t+1)^i - 1)/2)\n");
    let g = torus(48, 48, WeightModel::Unit, 0xA1);
    println!("workload torus(48x48): n={}, m={}\n", g.n(), g.m());
    let mut t = Table::new(&[
        "t",
        "k",
        "epoch",
        "measured radius",
        "bound ((2t+1)^i-1)/2",
        "utilisation",
    ]);
    for (k, tt) in [(16u32, 1u32), (16, 2), (27, 2), (16, 4)] {
        let params = TradeoffParams::new(k, tt);
        let r = general_spanner(&g, params, 0x1A, BuildOptions { track_radii: true });
        for (i, &radius) in r.radius_per_epoch.iter().enumerate() {
            let bound = params.radius_bound(i as u32 + 1);
            t.row(vec![
                tt.to_string(),
                k.to_string(),
                (i + 1).to_string(),
                radius.to_string(),
                f2(bound),
                f2(radius as f64 / bound.max(1.0)),
            ]);
        }
    }
    t.print();
    println!("\n(utilisation = measured/bound; must stay <= 1)");
}
