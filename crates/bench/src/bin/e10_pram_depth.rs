//! **E10 — PRAM extension** (Section 6, closing): depth equals the MPC
//! iteration count times `O(log* n)`, with near-linear work — and beats
//! the `O(k·log* n)` depth of Baswana–Sen for large `k`.

use spanner_bench::table::{f2, Table};
use spanner_bench::workloads;
use spanner_core::TradeoffParams;
use spanner_pram::pram_general_spanner;

fn main() {
    println!("# E10 — PRAM depth (CRCW, log* n primitives)\n");
    let g = workloads::default_er(1024);
    println!(
        "workload er(n={}, m={}); log* n = {}\n",
        g.n(),
        g.m(),
        spanner_pram::log_star(g.n())
    );
    let mut t = Table::new(&[
        "k",
        "t",
        "iters",
        "depth",
        "depth/(iters·log* n)",
        "BS depth (k·log* n + k)",
        "speedup vs BS",
        "work/m",
    ]);
    for k in [8u32, 16, 32, 64, 128] {
        let params = TradeoffParams::log_k(k);
        let run = pram_general_spanner(&g, params, 0x10);
        let ls = run.log_star_n as f64;
        let iters = run.result.iterations.max(1) as f64;
        // Baswana–Sen on the same accounting: k iterations, each with the
        // same 3 primitives + 1 step.
        let bs_depth = k as f64 * (3.0 * ls + 1.0);
        t.row(vec![
            k.to_string(),
            params.t.to_string(),
            run.result.iterations.to_string(),
            run.depth.to_string(),
            f2(run.depth as f64 / (iters * ls)),
            format!("{bs_depth:.0}"),
            f2(bs_depth / run.depth as f64),
            f2(run.work as f64 / g.m() as f64),
        ]);
    }
    t.print();
}
