//! **E5 — Theorem 1.3 / Appendix B**: the unweighted `O(k)`-stretch
//! spanner via sparse/dense decomposition and hitting sets, with the
//! decomposition statistics and the size envelope `O(k·n^{1+1/k})`.
//!
//! Scale note: the dense-ball guarantee rests on `n^{γ/4} ≫ log n`,
//! which only bites at large `n`; at laboratory sizes the hitting-set
//! rate saturates and `Z` is a large fraction of the dense vertices.
//! The *decomposition* (who is sparse, who is dense, who falls back) is
//! still exercised faithfully — the workloads below are chosen so both
//! sides are non-trivial: bounded-degree graphs (torus) classify fully
//! sparse, hub-heavy graphs (caterpillar, power law) split.

use spanner_bench::table::{f2, Table};
use spanner_bench::{measure, size_baseline};
use spanner_core::unweighted_ok::{unweighted_ok_spanner, UnweightedOkConfig};
use spanner_graph::generators::{self, WeightModel};
use spanner_graph::Graph;

fn workloads() -> Vec<(String, Graph)> {
    vec![
        // Control: tiny balls everywhere ⇒ fully sparse ⇒ pure local
        // Baswana–Sen.
        (
            "cycle(1024)".into(),
            generators::cycle(1024, WeightModel::Unit, 0xE5),
        ),
        // Mixed: far-ring vertices sparse, hub neighbourhoods dense.
        (
            "hub_ring(896+8x64)".into(),
            generators::hub_ring(896, 8, 64, WeightModel::Unit, 0xE5),
        ),
        // Control: expander-ish balls blow past any cap ⇒ fully dense ⇒
        // pure hitting-set machinery.
        (
            "er(n=1024,d=10)".into(),
            generators::connected_erdos_renyi(1024, 10.0 / 1023.0, WeightModel::Unit, 0xE5),
        ),
        (
            "plaw(n=1024,d=8)".into(),
            generators::chung_lu_power_law(1024, 8.0, 2.5, WeightModel::Unit, 0xE5)
                .unweighted_copy(),
        ),
    ]
}

fn main() {
    println!("# E5 — Theorem 1.3 (Appendix B, unweighted O(k) spanner)\n");
    for gamma in [0.5f64, 0.7] {
        println!("## gamma = {gamma} (ball cap 16·n^(gamma/2))\n");
        let mut t = Table::new(&[
            "workload",
            "k",
            "sparse",
            "dense",
            "|Z|",
            "H edges",
            "fallbacks",
            "stretch",
            "bound",
            "size",
            "size/(k·n^(1+1/k))",
            "valid",
        ]);
        for (name, g) in workloads() {
            for k in [2u32, 3, 4] {
                // `hitting_boost` well below 1 keeps the hitting-set
                // rate < 1 at laboratory n (the asymptotic rate
                // saturates there); any missed dense ball falls back to
                // the sparse path, preserving correctness.
                let cfg = UnweightedOkConfig {
                    gamma,
                    ball_factor: 16.0,
                    hitting_boost: 0.05,
                };
                let r = unweighted_ok_spanner(&g, k, cfg, 0xE5);
                let stats = r.decomposition.clone().expect("appendix B fills its stats");
                let m = measure(&g, &r.edges, 16, 5);
                t.row(vec![
                    name.clone(),
                    k.to_string(),
                    stats.sparse.to_string(),
                    stats.dense_assigned.to_string(),
                    stats.hitting_set.to_string(),
                    stats.aux_edges.to_string(),
                    stats.fallbacks.to_string(),
                    f2(m.stretch),
                    f2(r.stretch_bound),
                    m.size.to_string(),
                    f2(m.size as f64 / (k as f64 * size_baseline(g.n(), k))),
                    m.valid.to_string(),
                ]);
            }
        }
        t.print();
        println!();
    }
}
