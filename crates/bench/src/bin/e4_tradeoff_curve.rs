//! **E4 — Theorem 5.15**: the full round/stretch trade-off curve (the
//! paper's figure-equivalent). For fixed `k`, sweeps the contraction
//! interval `t` from 1 (Section 4) through `log k` (the distance-
//! approximation sweet spot) and `√k` (Section 3's schedule) to `k`
//! (Baswana–Sen): iterations ↓ rounds vs stretch, with the predicted
//! `t·⌈log k/log(t+1)⌉` and `2k^s` curves alongside.

use spanner_bench::table::{f2, Table};
use spanner_bench::{measure, size_baseline, workloads};
use spanner_core::{general_spanner, BuildOptions, TradeoffParams};

fn main() {
    println!("# E4 — Theorem 5.15 trade-off curve\n");
    let g = workloads::default_er(1024);
    println!(
        "workload er(n={}, m={}), weighted (powers of two)\n",
        g.n(),
        g.m()
    );
    for k in [16u32, 64] {
        println!("## k = {k}\n");
        let mut table = Table::new(&[
            "t",
            "epochs",
            "iters",
            "iters bound",
            "s=log(2t+1)/log(t+1)",
            "stretch",
            "stretch bound",
            "size",
            "size/(n^(1+1/k)(t+log k))",
            "valid",
        ]);
        let mut ts: Vec<u32> = vec![1, 2, 3, 4];
        ts.push((k as f64).log2().round() as u32); // log k
        ts.push((k as f64).sqrt().ceil() as u32); // sqrt k
        ts.push(k / 2);
        ts.push(k); // Baswana–Sen
        ts.sort_unstable();
        ts.dedup();
        for t in ts {
            let params = TradeoffParams::new(k, t);
            let r = general_spanner(&g, params, 0xE4, BuildOptions::default());
            let m = measure(&g, &r.edges, 24, 4);
            let denom = size_baseline(g.n(), k) * (t as f64 + (k as f64).log2());
            table.row(vec![
                t.to_string(),
                r.epochs.to_string(),
                r.iterations.to_string(),
                params.iterations().to_string(),
                f2(params.stretch_exponent()),
                f2(m.stretch),
                f2(params.stretch_bound()),
                m.size.to_string(),
                f2(m.size as f64 / denom),
                m.valid.to_string(),
            ]);
        }
        table.print();
        println!();
    }
}
