//! **E7 — Theorem 8.1 + Corollary 1.5**: spanners and APSP in the
//! Congested Clique. Measures clique rounds for construction and
//! spanner dissemination, the w.h.p. size with the parallel-repetition
//! trick, and the APSP approximation ratio.

use congested_clique::{cc_apsp, cc_spanner};
use spanner_bench::table::{f2, Table};
use spanner_bench::{measure, size_baseline};
use spanner_core::TradeoffParams;
use spanner_graph::edge::INFINITY;
use spanner_graph::generators::{Family, WeightModel};
use spanner_graph::shortest_paths::dijkstra;

fn main() {
    println!("# E7 — Section 8 (Congested Clique)\n");

    println!("## Theorem 8.1: spanner construction rounds (k=8, t=2)\n");
    let mut t = Table::new(&[
        "n",
        "m",
        "R (reps)",
        "cc rounds",
        "stretch",
        "bound",
        "size",
        "size/n^(1+1/k)",
        "valid",
    ]);
    let params = TradeoffParams::new(8, 2);
    for n in [256usize, 512, 1024] {
        let g = Family::ErdosRenyi { n, avg_deg: 10.0 }.generate(WeightModel::Uniform(1, 64), 0xE7);
        for reps in [1usize, ((n as f64).log2().ceil() as usize).min(32)] {
            let run = cc_spanner(&g, params, 0x7E, reps);
            let m = measure(&g, &run.result.edges, 16, 7);
            t.row(vec![
                n.to_string(),
                g.m().to_string(),
                reps.to_string(),
                run.rounds.to_string(),
                f2(m.stretch),
                f2(run.result.stretch_bound),
                m.size.to_string(),
                f2(m.size as f64 / size_baseline(n, params.k)),
                m.valid.to_string(),
            ]);
        }
    }
    t.print();

    println!("\n## Corollary 1.5: APSP (k = log n, t = log log n)\n");
    let mut t2 = Table::new(&[
        "n",
        "spanner rounds",
        "dissemination rounds",
        "total rounds",
        "approx max",
        "guarantee",
    ]);
    for n in [256usize, 512] {
        let g =
            Family::ErdosRenyi { n, avg_deg: 10.0 }.generate(WeightModel::PowersOfTwo(6), 0x7E7);
        let run = cc_apsp(&g, 0x57, None);
        // Measure ratios over a handful of rows.
        let mut max_ratio = 1.0f64;
        for s in [0u32, 7, 63] {
            let exact = dijkstra(&g, s).dist;
            let approx = run.row(s);
            for v in 0..g.n() {
                if v as u32 != s && exact[v] != INFINITY && exact[v] > 0 {
                    max_ratio = max_ratio.max(approx[v] as f64 / exact[v] as f64);
                }
            }
        }
        t2.row(vec![
            n.to_string(),
            run.spanner_run.rounds.to_string(),
            run.dissemination_rounds.to_string(),
            run.total_rounds.to_string(),
            f2(max_ratio),
            f2(run.stretch_bound),
        ]);
    }
    t2.print();
}
