//! **E1 — Corollary 1.2**: the paper's de-facto results table.
//!
//! Reproduces the four named (rounds, stretch, size) settings on the
//! standard weighted battery: predicted iteration counts, stretch
//! guarantees, and size envelopes against the measured values.

use spanner_bench::table::{f2, Table};
use spanner_bench::{measure, size_baseline, workloads};
use spanner_core::presets::{corollary_spanner, CorollarySetting};

fn main() {
    println!("# E1 — Corollary 1.2 settings (k = 8 where applicable)\n");
    let k = 8;
    for (name, g) in workloads::weighted_battery() {
        println!("## workload {name} (n={}, m={})\n", g.n(), g.m());
        let mut t = Table::new(&[
            "setting",
            "k",
            "t",
            "iters",
            "iters bound",
            "stretch",
            "stretch bound",
            "size",
            "size/n^(1+1/k)",
            "valid",
        ]);
        for setting in CorollarySetting::all() {
            let params = setting.params(g.n(), k);
            let r = corollary_spanner(&g, setting, k, 0xE1);
            let m = measure(&g, &r.edges, 32, 1);
            t.row(vec![
                setting.label(),
                params.k.to_string(),
                params.t.to_string(),
                r.iterations.to_string(),
                params.iterations().to_string(),
                f2(m.stretch),
                f2(r.stretch_bound),
                m.size.to_string(),
                f2(m.size as f64 / size_baseline(g.n(), params.k)),
                m.valid.to_string(),
            ]);
        }
        t.print();
        println!();
    }
}
