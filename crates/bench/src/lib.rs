//! # spanner-bench
//!
//! Experiment harness for the reproduction. Every theorem/corollary of
//! the paper has an experiment id (see `DESIGN.md` §4); each id has a
//! table-printing binary in `src/bin/` (run with
//! `cargo run --release -p spanner-bench --bin <id>`), and the hot code
//! paths additionally have Criterion timing benches in `benches/`.
//!
//! The library half is the shared harness: canonical workload sets,
//! measurement plumbing, and a fixed-width table printer whose output
//! is pasted into `EXPERIMENTS.md`.

pub mod table;
pub mod workloads;

use spanner_graph::verify::{sampled_pairwise_stretch, verify_spanner};
use spanner_graph::Graph;

/// Everything a table row needs about one constructed spanner.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Spanner edges.
    pub size: usize,
    /// Exact max per-edge certificate stretch (`d_H/w` over host edges).
    pub stretch: f64,
    /// Mean per-edge stretch.
    pub avg_stretch: f64,
    /// Sampled pairwise stretch (redundant end-to-end check).
    pub pairwise: f64,
    /// Whether every host edge is spanned (must always be true).
    pub valid: bool,
}

/// Verifies a spanner and collects the row statistics.
pub fn measure(g: &Graph, edges: &[u32], pair_samples: usize, seed: u64) -> Measured {
    spanner_graph::verify::assert_valid_edge_ids(g, edges);
    let rep = verify_spanner(g, edges);
    let pw = sampled_pairwise_stretch(g, edges, pair_samples, seed);
    Measured {
        size: edges.len(),
        stretch: rep.max_edge_stretch,
        avg_stretch: rep.avg_edge_stretch,
        pairwise: pw.max,
        valid: rep.all_edges_spanned,
    }
}

/// `n^{1+1/k}` — the size baseline every size column is normalised by.
pub fn size_baseline(n: usize, k: u32) -> f64 {
    (n as f64).powf(1.0 + 1.0 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators::{connected_erdos_renyi, WeightModel};

    #[test]
    fn measure_full_graph() {
        let g = connected_erdos_renyi(60, 0.1, WeightModel::Unit, 1);
        let all: Vec<u32> = (0..g.m() as u32).collect();
        let m = measure(&g, &all, 10, 2);
        assert!(m.valid);
        assert!(m.stretch <= 1.0 + 1e-9);
        assert_eq!(m.size, g.m());
    }

    #[test]
    fn baseline_matches_formula() {
        assert!((size_baseline(100, 2) - 1000.0).abs() < 1e-6);
    }
}
