//! Fixed-width table printing for the experiment binaries.
//!
//! Output is GitHub-flavoured markdown so experiment runs paste straight
//! into `EXPERIMENTS.md`.

/// A simple markdown table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders as markdown with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = width.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&fmt_row(&sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float to 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float to 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.starts_with("| a | bb |"));
        assert!(r.contains("| - | -- |"));
        assert!(r.contains("| 1 | 2  |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
