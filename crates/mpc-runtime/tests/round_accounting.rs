//! Integration tests of the round accounting itself: the measured round
//! counts of the primitives must match the model's closed forms, scale
//! the right way with the deployment shape, and be deterministic.

use mpc_runtime::{comm, primitives, Dist, MpcConfig, MpcSystem};

fn sorted_run(s_words: usize, machines: usize, n_records: usize) -> (u64, Vec<u64>) {
    let cfg = MpcConfig::explicit(s_words, machines, 8);
    let mut sys = MpcSystem::new(cfg);
    let data: Vec<u64> = (0..n_records as u64)
        .map(|i| primitives::splitmix64(i) % 4096)
        .collect();
    let d = Dist::distribute(&mut sys, data).unwrap();
    let sorted = primitives::sort_by_key(&mut sys, d, "sort", |&x| x).unwrap();
    (sys.rounds(), sorted.collect_out_of_model())
}

#[test]
fn sort_rounds_grow_as_machines_grow() {
    // Same data, same machine size, more machines ⇒ at least as many
    // partition levels ⇒ no fewer rounds.
    let (r_small, out_small) = sorted_run(256, 8, 2000);
    let (r_big, out_big) = sorted_run(256, 128, 2000);
    assert!(r_big >= r_small, "{r_big} < {r_small}");
    assert_eq!(out_small, out_big, "sortedness independent of deployment");
}

#[test]
fn sort_rounds_shrink_as_machines_fatten() {
    let (r_thin, _) = sorted_run(128, 64, 2000);
    let (r_fat, _) = sorted_run(4096, 64, 2000);
    assert!(r_fat <= r_thin, "{r_fat} > {r_thin}");
}

#[test]
fn reduce_tree_depth_matches_formula() {
    // One u64 summary per machine: fanout = capacity words, depth =
    // ceil(log_f P).
    for (words, slack, p) in [(4usize, 1usize, 64usize), (8, 1, 64), (64, 1, 64)] {
        let cfg = MpcConfig::explicit(words, p, slack);
        let mut sys = MpcSystem::new(cfg);
        let vals: Vec<u64> = (0..p as u64).collect();
        let _ = comm::reduce_tree(&mut sys, vals, "r", |a, b| a + b).unwrap();
        let f = cfg.fanout(1);
        let mut depth = 0u64;
        let mut cover = 1usize;
        while cover < p {
            cover *= f;
            depth += 1;
        }
        assert_eq!(sys.rounds(), depth, "words={words} p={p}");
    }
}

#[test]
fn scan_costs_twice_the_tree_depth() {
    let p = 81;
    let cfg = MpcConfig::explicit(3, p, 1); // fanout(1) = 3 → depth 4
    let mut sys = MpcSystem::new(cfg);
    let vals: Vec<u64> = vec![1; p];
    let _ = comm::machine_scan(&mut sys, vals, 0, "s", |a, b| a + b).unwrap();
    assert_eq!(sys.rounds(), 8);
}

#[test]
fn rounds_by_op_partitions_total() {
    let cfg = MpcConfig::explicit(512, 16, 8);
    let mut sys = MpcSystem::new(cfg);
    let d = Dist::distribute(&mut sys, (0..500u64).collect()).unwrap();
    let sorted = primitives::sort_by_key(&mut sys, d, "sort", |&x| x).unwrap();
    let _ = primitives::aggregate_by_key(&mut sys, sorted, "agg", |&x| x % 7, |&x| x, |a, b| a + b)
        .unwrap();
    let by_op: u64 = sys.metrics().rounds_by_op.values().sum();
    assert_eq!(by_op, sys.rounds(), "per-op rounds must sum to the total");
    assert!(sys.metrics().rounds_by_op.contains_key("sort"));
    assert!(sys.metrics().rounds_by_op.contains_key("agg"));
}

#[test]
fn accounting_is_deterministic() {
    let run = || {
        let cfg = MpcConfig::explicit(256, 12, 8);
        let mut sys = MpcSystem::new(cfg);
        let d = Dist::distribute(&mut sys, (0..333u64).rev().collect()).unwrap();
        let s = primitives::sort_by_key(&mut sys, d, "sort", |&x| x).unwrap();
        (
            sys.rounds(),
            sys.metrics().total_comm_words,
            s.collect_out_of_model(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn forward_fill_multiple_groups_spanning_machines() {
    let cfg = MpcConfig::explicit(8, 6, 2);
    let mut sys = MpcSystem::new(cfg);
    // 12 records over 6 machines (2 each); leaders at positions 0, 5, 9.
    let recs: Vec<(u64, u64)> = (0..12)
        .map(|i| {
            if i == 0 || i == 5 || i == 9 {
                (100 + i, u64::MAX)
            } else {
                (0, 0)
            }
        })
        .collect();
    let mut d = Dist::distribute(&mut sys, recs).unwrap();
    primitives::forward_fill(
        &mut sys,
        &mut d,
        "fill",
        |r| if r.1 == u64::MAX { Some(r.0) } else { None },
        |r, &u| r.1 = u,
    )
    .unwrap();
    let flat = d.collect_out_of_model();
    for (i, rec) in flat.iter().enumerate() {
        let expect = match i {
            0..=4 => 100,
            5..=8 => 105,
            _ => 109,
        };
        if rec.1 != u64::MAX {
            assert_eq!(rec.1, expect, "position {i}");
        }
    }
}
