//! Fixed-width records — the unit of storage and communication.
//!
//! The MPC model measures everything in machine words; all data exchanged
//! by the algorithms in this reproduction are constant-width tuples of
//! words (edge records, label records, counters), so the [`Record`] trait
//! exposes the width as an associated constant and the accounting stays
//! exact and cheap.

/// A fixed-width datum; `WORDS` is its size in machine words.
pub trait Record: Clone + Send + Sync + 'static {
    /// Width in machine words (`O(log n)` bits each).
    const WORDS: usize;
}

impl Record for u64 {
    const WORDS: usize = 1;
}

impl Record for u32 {
    const WORDS: usize = 1;
}

impl Record for i64 {
    const WORDS: usize = 1;
}

impl Record for bool {
    const WORDS: usize = 1;
}

impl Record for () {
    const WORDS: usize = 0;
}

impl<A: Record, B: Record> Record for (A, B) {
    const WORDS: usize = A::WORDS + B::WORDS;
}

impl<A: Record, B: Record, C: Record> Record for (A, B, C) {
    const WORDS: usize = A::WORDS + B::WORDS + C::WORDS;
}

impl<A: Record, B: Record, C: Record, D: Record> Record for (A, B, C, D) {
    const WORDS: usize = A::WORDS + B::WORDS + C::WORDS + D::WORDS;
}

impl<A: Record, B: Record, C: Record, D: Record, E: Record> Record for (A, B, C, D, E) {
    const WORDS: usize = A::WORDS + B::WORDS + C::WORDS + D::WORDS + E::WORDS;
}

impl<A: Record, B: Record, C: Record, D: Record, E: Record, F: Record> Record
    for (A, B, C, D, E, F)
{
    const WORDS: usize = A::WORDS + B::WORDS + C::WORDS + D::WORDS + E::WORDS + F::WORDS;
}

impl<T: Record, const N: usize> Record for [T; N] {
    const WORDS: usize = T::WORDS * N;
}

impl<T: Record> Record for Option<T> {
    // One word for the discriminant, pessimistically.
    const WORDS: usize = 1 + T::WORDS;
}

/// Total word count of a slice of records.
pub fn words_of<T: Record>(items: &[T]) -> usize {
    items.len() * T::WORDS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_widths_add_up() {
        assert_eq!(<(u64, u64)>::WORDS, 2);
        assert_eq!(<(u64, u32, u64)>::WORDS, 3);
        assert_eq!(<(u64, u64, u64, u64, u64, u64)>::WORDS, 6);
        assert_eq!(<[u64; 4]>::WORDS, 4);
        assert_eq!(<Option<(u64, u64)>>::WORDS, 3);
    }

    #[test]
    fn words_of_slice() {
        let xs: Vec<(u64, u64)> = vec![(1, 2), (3, 4), (5, 6)];
        assert_eq!(words_of(&xs), 6);
    }
}
