//! Error type for constraint violations and misuse of the runtime.

use std::fmt;

/// Why an MPC execution could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A machine would exceed its local memory capacity (`slack · S`).
    MemoryExceeded {
        /// Machine index.
        machine: usize,
        /// Words the machine would hold.
        words: usize,
        /// Enforced capacity.
        capacity: usize,
        /// Primitive in which the violation occurred.
        op: &'static str,
    },
    /// A machine would send or receive more than `slack · S` words in one
    /// round.
    BandwidthExceeded {
        /// Machine index.
        machine: usize,
        /// Words the machine would transfer this round.
        words: usize,
        /// Enforced capacity.
        capacity: usize,
        /// `"send"` or `"recv"`.
        direction: &'static str,
        /// Primitive in which the violation occurred.
        op: &'static str,
    },
    /// The collection does not fit the deployment at all.
    InputTooLarge {
        /// Words needed.
        needed: usize,
        /// Words available in total.
        available: usize,
    },
    /// A destination machine index out of range was produced by a routing
    /// function.
    BadDestination {
        /// Offending machine index.
        dest: usize,
        /// Number of machines.
        num_machines: usize,
    },
    /// A caller-supplied collection has the wrong shape for the deployment
    /// (e.g. a per-machine vector whose length is not the machine count).
    ShapeMismatch {
        /// What was mis-shaped.
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        got: usize,
        /// Primitive that rejected the input.
        op: &'static str,
    },
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::MemoryExceeded { machine, words, capacity, op } => write!(
                f,
                "machine {machine} exceeds local memory in {op}: {words} words > capacity {capacity}"
            ),
            MpcError::BandwidthExceeded { machine, words, capacity, direction, op } => write!(
                f,
                "machine {machine} exceeds per-round {direction} bandwidth in {op}: {words} > {capacity}"
            ),
            MpcError::InputTooLarge { needed, available } => write!(
                f,
                "input of {needed} words exceeds total deployment memory {available}"
            ),
            MpcError::BadDestination { dest, num_machines } => write!(
                f,
                "routing produced destination {dest} but there are only {num_machines} machines"
            ),
            MpcError::ShapeMismatch {
                what,
                expected,
                got,
                op,
            } => write!(
                f,
                "{op}: expected {expected} {what}, got {got}"
            ),
        }
    }
}

impl std::error::Error for MpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = MpcError::MemoryExceeded {
            machine: 3,
            words: 100,
            capacity: 64,
            op: "route",
        };
        assert!(e.to_string().contains("machine 3"));
        let e = MpcError::BandwidthExceeded {
            machine: 1,
            words: 9,
            capacity: 8,
            direction: "send",
            op: "route",
        };
        assert!(e.to_string().contains("send"));
        let e = MpcError::InputTooLarge {
            needed: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        let e = MpcError::BadDestination {
            dest: 9,
            num_machines: 4,
        };
        assert!(e.to_string().contains("9"));
        let e = MpcError::ShapeMismatch {
            what: "summaries (one per machine)",
            expected: 4,
            got: 2,
            op: "scan",
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(e.to_string().contains("got 2"));
    }
}
