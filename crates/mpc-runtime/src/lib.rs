//! A simulator for the **Massively Parallel Computation (MPC)** model
//! \[Karloff–Suri–Vassilvitskii '10; Beame–Koutris–Suciu '13; Goodrich–
//! Sitchinava–Zhang '11], as used by *"Massively Parallel Algorithms for
//! Distance Approximation and Spanners"* (SPAA 2021).
//!
//! # The model
//!
//! An input of `N` words is distributed across `P` machines, each with
//! local memory `S` words (`S = n^γ` in the strongly sublinear regime,
//! `S = Õ(n)` in the near-linear regime). Computation proceeds in
//! synchronous rounds; per round, each machine sends and receives at most
//! `S` words. The complexity measure is the number of rounds.
//!
//! # What this crate does
//!
//! * [`MpcSystem`] owns the configuration and the **accounting**: every
//!   communication primitive executed through it advances the round
//!   counter by the number of supersteps it actually performs, and
//!   validates the per-machine memory/bandwidth budget of every superstep
//!   (constraint violations surface as [`MpcError`]). Rounds are therefore
//!   *measured*, never asserted.
//! * [`Dist`] is a distributed collection: a vector of machine-local
//!   shards of fixed-width [`Record`]s.
//! * [`comm`] implements the raw communication layer: all-to-all
//!   [`comm::route`], `n^γ`-ary aggregation trees (`comm::gather_tree`,
//!   [`comm::broadcast_all`], [`comm::machine_scan`]) — the exact
//!   subroutines of the paper's Section 6 ("Sort", "Find Minimum",
//!   "Broadcast" via implicit aggregation trees of branching factor
//!   `n^γ`).
//! * [`primitives`] builds the Section 6 toolbox on top: sample
//!   [`primitives::sort_by_key`] (Goodrich et al.), key-grouped
//!   aggregation / find-min, segmented broadcast of group labels
//!   (`sorted_fill`), counting, and gather-to-one-machine (the Section 7
//!   "collect the spanner on one machine" step).
//!
//! Machine-local work within one superstep runs in parallel with rayon
//! (machines are independent by definition), but all observable results
//! are deterministic: shards are combined in machine order.
//!
//! # Executors
//!
//! Two physical engines run the simulation (see [`ExecutorKind`]):
//! the default **loop** executor iterates machine shards in-process,
//! while the **threaded** executor ([`MpcSystem::with_executor`]) runs
//! one OS thread per machine and moves every round's messages through
//! the `spanner-net` router, pricing each round under a pluggable
//! [`NetworkModel`] into a [`NetReport`] (predicted cluster wall-clock).
//! Both engines share all charging code, so shards, rounds, and traffic
//! are bit-identical at fixed seeds.

pub mod comm;
pub mod config;
pub mod dist;
pub mod error;
pub mod metrics;
pub mod primitives;
pub mod record;
pub mod system;

pub use config::{MemoryRegime, MpcConfig};
pub use dist::Dist;
pub use error::MpcError;
pub use metrics::Metrics;
pub use record::Record;
pub use spanner_net as net;
pub use spanner_net::{NetReport, NetworkModel, WORD_BYTES};
pub use system::{ExecutorKind, MpcSystem};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, MpcError>;
