//! The [`MpcSystem`]: configuration + accounting context through which all
//! primitives execute.

use crate::config::MpcConfig;
use crate::error::MpcError;
use crate::metrics::Metrics;
use crate::record::Record;
use crate::Result;

/// One simulated MPC deployment.
///
/// All primitives take `&mut MpcSystem` so that round counting, traffic
/// accounting, and constraint checking flow through a single place.
#[derive(Debug, Clone)]
pub struct MpcSystem {
    cfg: MpcConfig,
    metrics: Metrics,
}

impl MpcSystem {
    /// A fresh deployment with zeroed metrics.
    pub fn new(cfg: MpcConfig) -> Self {
        MpcSystem {
            cfg,
            metrics: Metrics::default(),
        }
    }

    /// The deployment configuration.
    #[inline]
    pub fn cfg(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Number of machines.
    #[inline]
    pub fn machines(&self) -> usize {
        self.cfg.num_machines
    }

    /// Accumulated execution statistics.
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Rounds executed so far (shorthand).
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Resets metrics (e.g. to time a phase in isolation).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::default();
    }

    /// Records one executed communication round attributed to `op`, with
    /// the observed per-machine traffic extremes.
    pub(crate) fn charge_round(
        &mut self,
        op: &'static str,
        max_sent: usize,
        max_received: usize,
        total: u64,
    ) -> Result<()> {
        self.metrics.add_round(op);
        self.metrics.observe_traffic(max_sent, max_received, total);
        let cap = self.cfg.capacity();
        if max_sent > cap {
            return Err(MpcError::BandwidthExceeded {
                machine: usize::MAX,
                words: max_sent,
                capacity: cap,
                direction: "send",
                op,
            });
        }
        if max_received > cap {
            return Err(MpcError::BandwidthExceeded {
                machine: usize::MAX,
                words: max_received,
                capacity: cap,
                direction: "recv",
                op,
            });
        }
        Ok(())
    }

    /// Validates that machine `idx` may hold `words` words; records the
    /// observation into the peak-storage metric.
    pub(crate) fn check_storage(
        &mut self,
        machine: usize,
        words: usize,
        op: &'static str,
    ) -> Result<()> {
        self.metrics.observe_storage(words);
        let cap = self.cfg.capacity();
        if words > cap {
            return Err(MpcError::MemoryExceeded {
                machine,
                words,
                capacity: cap,
                op,
            });
        }
        Ok(())
    }

    /// Validates the storage of every shard of a collection.
    pub(crate) fn check_all_storage<T: Record>(
        &mut self,
        shards: &[Vec<T>],
        op: &'static str,
    ) -> Result<()> {
        for (i, shard) in shards.iter().enumerate() {
            self.check_storage(i, shard.len() * T::WORDS, op)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_round_counts_and_checks() {
        let mut sys = MpcSystem::new(MpcConfig::explicit(8, 4, 1));
        sys.charge_round("test", 8, 8, 16).unwrap();
        assert_eq!(sys.rounds(), 1);
        let err = sys.charge_round("test", 9, 0, 9).unwrap_err();
        assert!(matches!(err, MpcError::BandwidthExceeded { .. }));
        // The round is still counted (the violation happened *in* a round).
        assert_eq!(sys.rounds(), 2);
    }

    #[test]
    fn storage_check_enforces_capacity() {
        let mut sys = MpcSystem::new(MpcConfig::explicit(8, 2, 2));
        sys.check_storage(0, 16, "x").unwrap();
        let err = sys.check_storage(1, 17, "x").unwrap_err();
        assert!(matches!(err, MpcError::MemoryExceeded { machine: 1, .. }));
        assert_eq!(sys.metrics().peak_machine_words, 17);
    }

    #[test]
    fn reset_clears_metrics() {
        let mut sys = MpcSystem::new(MpcConfig::explicit(8, 2, 2));
        sys.charge_round("a", 1, 1, 2).unwrap();
        sys.reset_metrics();
        assert_eq!(sys.rounds(), 0);
    }
}
