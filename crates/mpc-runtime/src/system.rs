//! The [`MpcSystem`]: configuration + accounting context through which all
//! primitives execute.

use std::sync::Arc;

use spanner_net::{MachinePool, NetReport, NetworkModel, WORD_BYTES};

use crate::config::MpcConfig;
use crate::error::MpcError;
use crate::metrics::Metrics;
use crate::record::Record;
use crate::Result;

/// Which physical engine executes the simulated machines.
///
/// Both engines run the same algorithms with the same accounting and
/// produce bit-identical shards, rounds, and traffic at fixed seeds;
/// `Threaded` additionally moves every round's messages between real OS
/// threads and prices the run under a [`NetworkModel`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ExecutorKind {
    /// Data-parallel loop over machine shards (the original engine).
    #[default]
    Loop,
    /// One OS thread per machine, exchanging per-round message batches
    /// through a router, with rounds priced by the given model.
    Threaded(NetworkModel),
}

/// The threaded engine's state: the shared thread pool plus the
/// simulated-clock report it accumulates.
#[derive(Debug, Clone)]
struct NetExec {
    model: NetworkModel,
    pool: Arc<MachinePool>,
    report: NetReport,
}

/// One simulated MPC deployment.
///
/// All primitives take `&mut MpcSystem` so that round counting, traffic
/// accounting, and constraint checking flow through a single place.
#[derive(Debug, Clone)]
pub struct MpcSystem {
    cfg: MpcConfig,
    metrics: Metrics,
    net: Option<NetExec>,
}

impl MpcSystem {
    /// A fresh deployment with zeroed metrics on the loop executor.
    pub fn new(cfg: MpcConfig) -> Self {
        Self::with_executor(cfg, ExecutorKind::Loop)
    }

    /// A fresh deployment on the chosen executor. `Threaded` spawns one
    /// OS thread per machine up front (parked between rounds); clones of
    /// the system share the same pool.
    pub fn with_executor(cfg: MpcConfig, executor: ExecutorKind) -> Self {
        let net = match executor {
            ExecutorKind::Loop => None,
            ExecutorKind::Threaded(model) => Some(NetExec {
                model,
                pool: Arc::new(MachinePool::spawn(cfg.num_machines)),
                report: NetReport::new(cfg.num_machines),
            }),
        };
        MpcSystem {
            cfg,
            metrics: Metrics::default(),
            net,
        }
    }

    /// Which executor this system runs on.
    pub fn executor(&self) -> ExecutorKind {
        match &self.net {
            None => ExecutorKind::Loop,
            Some(net) => ExecutorKind::Threaded(net.model),
        }
    }

    /// The simulated-clock network report (threaded executor only).
    pub fn net_report(&self) -> Option<&NetReport> {
        self.net.as_ref().map(|net| &net.report)
    }

    /// Handle to the machine-thread pool, if the threaded engine is on.
    pub(crate) fn pool_handle(&self) -> Option<Arc<MachinePool>> {
        self.net.as_ref().map(|net| Arc::clone(&net.pool))
    }

    /// Folds one physical exchange's per-machine wire traffic (in words)
    /// into the network report.
    pub(crate) fn note_exchange_traffic(&mut self, sent_words: &[u64], recv_words: &[u64]) {
        if let Some(net) = &mut self.net {
            net.report.add_traffic_words(sent_words, recv_words);
        }
    }

    /// The deployment configuration.
    #[inline]
    pub fn cfg(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Number of machines.
    #[inline]
    pub fn machines(&self) -> usize {
        self.cfg.num_machines
    }

    /// Accumulated execution statistics.
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Rounds executed so far (shorthand).
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Resets metrics and the network report (e.g. to time a phase in
    /// isolation).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::default();
        if let Some(net) = &mut self.net {
            net.report = NetReport::new(self.cfg.num_machines);
        }
    }

    /// Records one executed communication round attributed to `op`, with
    /// the observed per-machine traffic extremes.
    pub(crate) fn charge_round(
        &mut self,
        op: &'static str,
        max_sent: usize,
        max_received: usize,
        total: u64,
    ) -> Result<()> {
        self.metrics.add_round(op);
        self.metrics.observe_traffic(max_sent, max_received, total);
        if let Some(net) = &mut self.net {
            let cost = net.model.round_cost(
                max_sent as u64 * WORD_BYTES,
                max_received as u64 * WORD_BYTES,
                total * WORD_BYTES,
            );
            net.report.observe_round(cost);
        }
        let cap = self.cfg.capacity();
        if max_sent > cap {
            return Err(MpcError::BandwidthExceeded {
                machine: usize::MAX,
                words: max_sent,
                capacity: cap,
                direction: "send",
                op,
            });
        }
        if max_received > cap {
            return Err(MpcError::BandwidthExceeded {
                machine: usize::MAX,
                words: max_received,
                capacity: cap,
                direction: "recv",
                op,
            });
        }
        Ok(())
    }

    /// Validates that machine `idx` may hold `words` words; records the
    /// observation into the peak-storage metric.
    pub(crate) fn check_storage(
        &mut self,
        machine: usize,
        words: usize,
        op: &'static str,
    ) -> Result<()> {
        self.metrics.observe_storage(words);
        let cap = self.cfg.capacity();
        if words > cap {
            return Err(MpcError::MemoryExceeded {
                machine,
                words,
                capacity: cap,
                op,
            });
        }
        Ok(())
    }

    /// Validates the storage of every shard of a collection.
    pub(crate) fn check_all_storage<T: Record>(
        &mut self,
        shards: &[Vec<T>],
        op: &'static str,
    ) -> Result<()> {
        for (i, shard) in shards.iter().enumerate() {
            self.check_storage(i, shard.len() * T::WORDS, op)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_round_counts_and_checks() {
        let mut sys = MpcSystem::new(MpcConfig::explicit(8, 4, 1));
        sys.charge_round("test", 8, 8, 16).unwrap();
        assert_eq!(sys.rounds(), 1);
        let err = sys.charge_round("test", 9, 0, 9).unwrap_err();
        assert!(matches!(err, MpcError::BandwidthExceeded { .. }));
        // The round is still counted (the violation happened *in* a round).
        assert_eq!(sys.rounds(), 2);
    }

    #[test]
    fn storage_check_enforces_capacity() {
        let mut sys = MpcSystem::new(MpcConfig::explicit(8, 2, 2));
        sys.check_storage(0, 16, "x").unwrap();
        let err = sys.check_storage(1, 17, "x").unwrap_err();
        assert!(matches!(err, MpcError::MemoryExceeded { machine: 1, .. }));
        assert_eq!(sys.metrics().peak_machine_words, 17);
    }

    #[test]
    fn reset_clears_metrics() {
        let mut sys = MpcSystem::new(MpcConfig::explicit(8, 2, 2));
        sys.charge_round("a", 1, 1, 2).unwrap();
        sys.reset_metrics();
        assert_eq!(sys.rounds(), 0);
    }

    #[test]
    fn loop_executor_has_no_net_report() {
        let sys = MpcSystem::new(MpcConfig::explicit(8, 2, 2));
        assert_eq!(sys.executor(), ExecutorKind::Loop);
        assert!(sys.net_report().is_none());
        assert!(sys.pool_handle().is_none());
    }

    #[test]
    fn threaded_executor_prices_every_round() {
        let model = spanner_net::NetworkModel::FullMesh {
            latency_s: 1e-3,
            bytes_per_sec: 1e6,
        };
        let mut sys =
            MpcSystem::with_executor(MpcConfig::explicit(64, 4, 1), ExecutorKind::Threaded(model));
        assert_eq!(sys.executor(), ExecutorKind::Threaded(model));
        sys.charge_round("a", 10, 4, 20).unwrap();
        sys.charge_round("b", 2, 8, 12).unwrap();
        let report = sys.net_report().expect("threaded runs carry a report");
        assert_eq!(report.rounds, 2);
        // Each round: latency + busier-direction bytes / bandwidth.
        let expected = (1e-3 + 80.0 / 1e6) + (1e-3 + 64.0 / 1e6);
        assert!((report.total_seconds - expected).abs() < 1e-12);
        sys.reset_metrics();
        assert_eq!(sys.net_report().unwrap().rounds, 0);
    }
}
