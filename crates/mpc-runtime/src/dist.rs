//! Distributed collections: machine-sharded vectors of fixed-width
//! records.
//!
//! Operations that stay machine-local cost **zero rounds** in the MPC
//! model and are provided here ([`Dist::map`], [`Dist::filter`],
//! [`Dist::flat_map`], [`Dist::union`], …); they still validate the
//! per-machine memory constraint because local transforms can grow data.
//! Anything that moves records across machines lives in [`crate::comm`]
//! and [`crate::primitives`] and charges rounds.
//!
//! The "machines" execute concurrently on the rayon pool (shards are
//! disjoint, closures are `Sync`, and collects preserve shard order), so
//! every operation is deterministic regardless of `RAYON_NUM_THREADS`.

use rayon::prelude::*;

use crate::record::Record;
use crate::system::MpcSystem;
use crate::{MpcError, Result};

/// A collection of `T` records sharded across the machines of one
/// [`MpcSystem`]. Shard `i` lives on machine `i`.
#[derive(Debug, Clone)]
pub struct Dist<T: Record> {
    shards: Vec<Vec<T>>,
}

impl<T: Record> Dist<T> {
    /// An empty collection spread over the system's machines.
    pub fn empty(sys: &MpcSystem) -> Self {
        Dist {
            shards: vec![Vec::new(); sys.machines()],
        }
    }

    /// Distributes `items` across machines in contiguous blocks, the
    /// model's "input is arbitrarily distributed" starting state.
    ///
    /// Fails with [`MpcError::InputTooLarge`] if the data cannot fit even
    /// at full capacity.
    pub fn distribute(sys: &mut MpcSystem, items: Vec<T>) -> Result<Self> {
        let p = sys.machines();
        let total_words = items.len() * T::WORDS;
        if total_words > sys.cfg().capacity() * p {
            return Err(MpcError::InputTooLarge {
                needed: total_words,
                available: sys.cfg().capacity() * p,
            });
        }
        let per = items.len().div_ceil(p).max(1);
        let mut shards = vec![Vec::new(); p];
        for (i, chunk) in items.chunks(per).enumerate() {
            shards[i] = chunk.to_vec();
        }
        let d = Dist { shards };
        let mut sys2 = sys.clone();
        sys2.check_all_storage(&d.shards, "distribute")?;
        *sys = sys2;
        Ok(d)
    }

    /// Builds a collection from explicit shards (used by the comm layer).
    pub(crate) fn from_shards(shards: Vec<Vec<T>>) -> Self {
        Dist { shards }
    }

    /// Read-only access to the shards.
    pub fn shards(&self) -> &[Vec<T>] {
        &self.shards
    }

    /// Consumes the collection into its shards.
    pub(crate) fn into_shards(self) -> Vec<Vec<T>> {
        self.shards
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Vec::is_empty)
    }

    /// Total words held.
    pub fn words(&self) -> usize {
        self.len() * T::WORDS
    }

    /// Largest shard size in words (the collection's memory footprint on
    /// the busiest machine).
    pub fn max_shard_words(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len() * T::WORDS)
            .max()
            .unwrap_or(0)
    }

    /// **Out-of-model extraction**: concatenates all shards in machine
    /// order. This is how the experimenter reads the final answer off the
    /// cluster once the algorithm has finished; it charges no rounds and
    /// must not be used *inside* algorithms (use
    /// [`crate::comm::gather_to_machine`] there, which pays for the
    /// communication).
    pub fn collect_out_of_model(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for s in &self.shards {
            out.extend(s.iter().cloned());
        }
        out
    }

    /// Machine-local map (0 rounds). Validates post-transform storage.
    pub fn map<U: Record>(
        &self,
        sys: &mut MpcSystem,
        f: impl Fn(&T) -> U + Send + Sync,
    ) -> Result<Dist<U>> {
        let shards: Vec<Vec<U>> = self
            .shards
            .par_iter()
            .map(|s| s.iter().map(&f).collect())
            .collect();
        sys.check_all_storage(&shards, "map")?;
        Ok(Dist { shards })
    }

    /// Machine-local filter (0 rounds).
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync) -> Dist<T> {
        let shards: Vec<Vec<T>> = self
            .shards
            .par_iter()
            .map(|s| s.iter().filter(|x| f(x)).cloned().collect())
            .collect();
        Dist { shards }
    }

    /// Machine-local flat-map (0 rounds). Validates post-transform
    /// storage: fan-out transforms (like emitting both directions of an
    /// edge) can overflow a machine.
    pub fn flat_map<U: Record, I: IntoIterator<Item = U>>(
        &self,
        sys: &mut MpcSystem,
        f: impl Fn(&T) -> I + Send + Sync,
    ) -> Result<Dist<U>> {
        let shards: Vec<Vec<U>> = self
            .shards
            .par_iter()
            .map(|s| s.iter().flat_map(&f).collect())
            .collect();
        sys.check_all_storage(&shards, "flat_map")?;
        Ok(Dist { shards })
    }

    /// Machine-local in-place sort of each shard (0 rounds; a building
    /// block of the distributed sample sort).
    pub fn local_sort_by_key<K: Ord>(&mut self, key: impl Fn(&T) -> K + Send + Sync) {
        self.shards
            .par_iter_mut()
            .for_each(|s| s.sort_by_key(|x| key(x)));
    }

    /// Machine-local union: shard-wise concatenation (0 rounds — both
    /// collections already live on the same machines). Validates storage.
    pub fn union(&self, sys: &mut MpcSystem, other: &Dist<T>) -> Result<Dist<T>> {
        if self.shards.len() != other.shards.len() {
            return Err(MpcError::ShapeMismatch {
                what: "shards (collections from deployments of different sizes)",
                expected: self.shards.len(),
                got: other.shards.len(),
                op: "union",
            });
        }
        let shards: Vec<Vec<T>> = self
            .shards
            .par_iter()
            .zip(other.shards.par_iter())
            .map(|(a, b)| {
                let mut v = Vec::with_capacity(a.len() + b.len());
                v.extend(a.iter().cloned());
                v.extend(b.iter().cloned());
                v
            })
            .collect();
        sys.check_all_storage(&shards, "union")?;
        Ok(Dist { shards })
    }

    /// Per-shard aggregation (0 rounds): applies `f` to each shard,
    /// producing one local summary per machine. The caller then combines
    /// summaries with a tree primitive that charges rounds.
    pub fn per_machine<U: Send>(&self, f: impl Fn(&[T]) -> U + Send + Sync) -> Vec<U> {
        self.shards.par_iter().map(|s| f(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    fn sys(words: usize, machines: usize) -> MpcSystem {
        MpcSystem::new(MpcConfig::explicit(words, machines, 1))
    }

    #[test]
    fn distribute_blocks() {
        let mut s = sys(4, 4);
        let d = Dist::distribute(&mut s, (0u64..10).collect()).unwrap();
        assert_eq!(d.len(), 10);
        assert_eq!(d.shards()[0].len(), 3);
        assert_eq!(d.collect_out_of_model(), (0u64..10).collect::<Vec<_>>());
    }

    #[test]
    fn distribute_rejects_oversize() {
        let mut s = sys(2, 2);
        let err = Dist::distribute(&mut s, (0u64..100).collect()).unwrap_err();
        assert!(matches!(err, MpcError::InputTooLarge { .. }));
    }

    #[test]
    fn map_and_filter_are_local() {
        let mut s = sys(8, 4);
        let d = Dist::distribute(&mut s, (0u64..16).collect()).unwrap();
        let doubled = d.map(&mut s, |x| x * 2).unwrap();
        assert_eq!(doubled.collect_out_of_model()[3], 6);
        let evens = d.filter(|x| x % 2 == 0);
        assert_eq!(evens.len(), 8);
        assert_eq!(s.rounds(), 0, "local ops must not charge rounds");
    }

    #[test]
    fn flat_map_checks_capacity() {
        let mut s = sys(4, 2); // capacity 4 words per machine
        let d = Dist::distribute(&mut s, vec![1u64, 2]).unwrap();
        // Fan-out ×8 overflows a 4-word machine.
        let err = d.flat_map(&mut s, |&x| vec![x; 8]).unwrap_err();
        assert!(matches!(err, MpcError::MemoryExceeded { .. }));
    }

    #[test]
    fn union_concatenates_shardwise() {
        let mut s = sys(8, 2);
        let a = Dist::distribute(&mut s, vec![1u64, 2]).unwrap();
        let b = Dist::distribute(&mut s, vec![3u64, 4]).unwrap();
        let u = a.union(&mut s, &b).unwrap();
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn local_sort_sorts_within_shards() {
        let mut s = sys(8, 2);
        let mut d = Dist::distribute(&mut s, vec![5u64, 3, 9, 1]).unwrap();
        d.local_sort_by_key(|&x| x);
        for shard in d.shards() {
            assert!(shard.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn per_machine_summaries() {
        let mut s = sys(8, 2);
        let d = Dist::distribute(&mut s, vec![1u64, 2, 3, 4]).unwrap();
        let sums = d.per_machine(|s| s.iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), 10);
    }
}
