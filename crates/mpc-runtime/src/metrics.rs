//! Round / memory / traffic accounting.

use std::collections::BTreeMap;

/// Execution statistics accumulated by an [`crate::MpcSystem`].
///
/// `rounds` is the headline number every experiment reports; the rest
/// exists to sanity-check the model constraints and to break rounds down
/// by primitive (the per-`op` map feeds experiment E9).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Synchronous communication rounds executed so far.
    pub rounds: u64,
    /// Total words ever communicated.
    pub total_comm_words: u64,
    /// Largest number of words any machine sent in a single round.
    pub max_send_words: usize,
    /// Largest number of words any machine received in a single round.
    pub max_recv_words: usize,
    /// Sum over rounds of the busiest sender's words — the send side of
    /// the critical path a latency/bandwidth network model charges.
    pub critical_send_words: u64,
    /// Sum over rounds of the busiest receiver's words.
    pub critical_recv_words: u64,
    /// Sum over rounds of `max(busiest send, busiest receive)` — the
    /// exact critical-link total, so a `FullMesh` prediction from these
    /// aggregates equals the per-round sum (maxima don't distribute
    /// over sums, so totals alone would under-charge skewed rounds).
    pub critical_link_words: u64,
    /// Largest number of words any machine ever held.
    pub peak_machine_words: usize,
    /// Rounds attributed to each primitive label.
    pub rounds_by_op: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// Records one communication round attributed to `op`.
    pub fn add_round(&mut self, op: &'static str) {
        self.rounds += 1;
        *self.rounds_by_op.entry(op).or_insert(0) += 1;
    }

    /// Folds per-round traffic extremes into the running maxima and the
    /// critical-path accumulators.
    pub fn observe_traffic(&mut self, sent: usize, received: usize, total: u64) {
        self.max_send_words = self.max_send_words.max(sent);
        self.max_recv_words = self.max_recv_words.max(received);
        self.critical_send_words += sent as u64;
        self.critical_recv_words += received as u64;
        self.critical_link_words += sent.max(received) as u64;
        self.total_comm_words += total;
    }

    /// Folds a storage observation into the peak.
    pub fn observe_storage(&mut self, words: usize) {
        self.peak_machine_words = self.peak_machine_words.max(words);
    }

    /// Pretty one-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "rounds={} peak_mem={}w max_send={}w max_recv={}w total_comm={}w crit_link={}w",
            self.rounds,
            self.peak_machine_words,
            self.max_send_words,
            self.max_recv_words,
            self.total_comm_words,
            self.critical_link_words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_accumulate_per_op() {
        let mut m = Metrics::default();
        m.add_round("sort");
        m.add_round("sort");
        m.add_round("route");
        assert_eq!(m.rounds, 3);
        assert_eq!(m.rounds_by_op["sort"], 2);
        assert_eq!(m.rounds_by_op["route"], 1);
    }

    #[test]
    fn traffic_and_storage_track_maxima() {
        let mut m = Metrics::default();
        m.observe_traffic(10, 20, 30);
        m.observe_traffic(5, 40, 45);
        m.observe_storage(100);
        m.observe_storage(50);
        assert_eq!(m.max_send_words, 10);
        assert_eq!(m.max_recv_words, 40);
        assert_eq!(m.total_comm_words, 75);
        assert_eq!(m.peak_machine_words, 100);
        assert!(m.summary().contains("rounds=0"));
        // Critical-path accumulators sum per-round skew, not just maxima:
        // rounds were (10,20) and (5,40), so the critical link carried
        // 20 + 40 words even though no single direction's max exceeds 40.
        assert_eq!(m.critical_send_words, 15);
        assert_eq!(m.critical_recv_words, 60);
        assert_eq!(m.critical_link_words, 60);
        assert!(m.summary().contains("crit_link=60w"));
    }
}
