//! MPC configuration: memory regimes, machine counts, tree fan-outs.

/// Which of the paper's three local-memory regimes a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryRegime {
    /// `S = n^γ` for a constant `γ < 1` — the paper's main setting for
    /// spanner construction (Theorem 1.1).
    StronglySublinear,
    /// `S = Õ(n)` — the setting of the APSP application (Corollary 1.4).
    NearLinear,
    /// `S ≥ n^{1+ε}` — only used by tests/comparisons.
    StronglySuperlinear,
}

/// Static description of an MPC deployment.
///
/// `machine_words` is the paper's `S`; `num_machines` its `P`. The product
/// `P·S` must cover the input (`Õ(N)` total memory); the `slack` factor is
/// the constant hidden in the paper's `O(S)` per-machine guarantees —
/// machines may hold/send/receive up to `slack·S` words per round before
/// the simulator reports a violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcConfig {
    /// Local memory per machine, in words (`S`).
    pub machine_words: usize,
    /// Number of machines (`P`).
    pub num_machines: usize,
    /// Constant-factor slack on the memory/bandwidth constraints.
    pub slack: usize,
    /// Memory regime this configuration is meant to model (documentation /
    /// reporting only; the constraints enforced are `machine_words` ×
    /// `slack`).
    pub regime: MemoryRegime,
    /// The `γ` this configuration was derived from, when applicable
    /// (reporting only).
    pub gamma: Option<f64>,
}

impl MpcConfig {
    /// Strongly sublinear configuration for a graph with `n` vertices and
    /// `input_words` total input size: `S = ⌈n^γ⌉`, `P = ⌈c·input/S⌉`.
    ///
    /// # Panics
    /// Panics if `γ ∉ (0, 1)`.
    pub fn strongly_sublinear(n: usize, gamma: f64, input_words: usize) -> Self {
        assert!(
            gamma > 0.0 && gamma < 1.0,
            "gamma must be in (0,1), got {gamma}"
        );
        let s = (n.max(2) as f64).powf(gamma).ceil() as usize;
        // Floor: a machine must hold at least a few hundred words for the
        // model to be meaningful (records are up to 8 words; real MPC
        // machines are gigabytes). Only relevant for toy-scale `n`.
        let s = s.max(512);
        let p = input_words.div_ceil(s).max(2);
        MpcConfig {
            machine_words: s,
            num_machines: p,
            slack: 8,
            regime: MemoryRegime::StronglySublinear,
            gamma: Some(gamma),
        }
    }

    /// Near-linear configuration: `S = n·⌈log₂ n⌉` (the `Õ(n)` of
    /// Corollary 1.4), machine count covering the input.
    pub fn near_linear(n: usize, input_words: usize) -> Self {
        let n = n.max(2);
        let s = n * (n as f64).log2().ceil().max(1.0) as usize;
        let p = input_words.div_ceil(s).max(2);
        MpcConfig {
            machine_words: s,
            num_machines: p,
            slack: 8,
            regime: MemoryRegime::NearLinear,
            gamma: None,
        }
    }

    /// Fully explicit configuration (used by the runtime's own tests).
    pub fn explicit(machine_words: usize, num_machines: usize, slack: usize) -> Self {
        MpcConfig {
            machine_words,
            num_machines,
            slack,
            regime: MemoryRegime::StronglySublinear,
            gamma: None,
        }
    }

    /// The enforced per-machine capacity in words (`slack · S`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.machine_words.saturating_mul(self.slack)
    }

    /// Aggregation-tree fan-out for records of `rec_words` words: as many
    /// children as fit the per-round receive budget (the paper's implicit
    /// `n^γ`-ary trees), never below 2.
    #[inline]
    pub fn fanout(&self, rec_words: usize) -> usize {
        (self.machine_words / rec_words.max(1)).max(2)
    }

    /// Depth of an aggregation tree over all machines for records of the
    /// given width — the `O(1/γ)` factor of Section 6.
    pub fn tree_depth(&self, rec_words: usize) -> usize {
        let f = self.fanout(rec_words);
        let mut depth = 0usize;
        let mut cover = 1usize;
        while cover < self.num_machines {
            cover = cover.saturating_mul(f);
            depth += 1;
        }
        depth.max(1)
    }

    /// Total memory across the deployment.
    pub fn total_words(&self) -> usize {
        self.machine_words * self.num_machines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sublinear_config_covers_input() {
        let cfg = MpcConfig::strongly_sublinear(10_000, 0.5, 200_000);
        assert!(cfg.machine_words >= 100); // n^0.5
        assert!(cfg.total_words() >= 200_000);
        assert_eq!(cfg.regime, MemoryRegime::StronglySublinear);
    }

    #[test]
    fn smaller_gamma_means_more_machines() {
        let a = MpcConfig::strongly_sublinear(10_000, 0.3, 500_000);
        let b = MpcConfig::strongly_sublinear(10_000, 0.7, 500_000);
        assert!(a.machine_words < b.machine_words);
        assert!(a.num_machines > b.num_machines);
    }

    #[test]
    fn near_linear_has_big_machines() {
        let cfg = MpcConfig::near_linear(1_000, 50_000);
        assert!(cfg.machine_words >= 1_000);
        assert_eq!(cfg.regime, MemoryRegime::NearLinear);
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0,1)")]
    fn rejects_bad_gamma() {
        let _ = MpcConfig::strongly_sublinear(100, 1.5, 100);
    }

    #[test]
    fn tree_depth_shrinks_with_fanout() {
        let cfg = MpcConfig::explicit(4, 64, 2);
        // fanout(1) = 4 → depth over 64 machines = 3
        assert_eq!(cfg.tree_depth(1), 3);
        let cfg2 = MpcConfig::explicit(64, 64, 2);
        assert_eq!(cfg2.tree_depth(1), 1);
    }

    #[test]
    fn fanout_floor_is_two() {
        let cfg = MpcConfig::explicit(4, 8, 2);
        assert_eq!(cfg.fanout(100), 2);
    }
}
