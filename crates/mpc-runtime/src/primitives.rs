//! The Section 6 toolbox, built on [`crate::comm`]:
//!
//! * [`sort_by_key`] — distributed sample sort (Goodrich–Sitchinava–Zhang),
//!   `O(1/γ)` rounds. Ties are broken by a global position tiebreak so
//!   runs of equal keys split across machines — this is what lets a
//!   high-degree vertex's edges occupy a *contiguous group of machines*
//!   (the paper's input configuration `M(v)`).
//! * [`forward_fill`] — segmented broadcast over a sorted collection: the
//!   head ("leader") record of each key group announces a value to the
//!   whole group, even when the group spans machines. Realised with one
//!   machine-level exclusive scan (`O(1/γ)` rounds).
//! * [`aggregate_by_key`] — semisort + aggregate (the paper's **Find
//!   Minimum** over `M(v)` when used with `min`): one hash-routing round
//!   plus local folding.
//! * [`count_records`], [`broadcast_value`], [`global_max`] — small
//!   conveniences on the aggregation trees.

use rayon::prelude::*;

use crate::comm::{broadcast_all, machine_scan, reduce_tree, route, route_with};
use crate::dist::Dist;
use crate::record::Record;
use crate::system::MpcSystem;
use crate::Result;

/// SplitMix64 — cheap deterministic hash for routing keys to machines.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Distributed multi-level sample sort by `key` (Goodrich–Sitchinava–
/// Zhang). Ties are broken by a per-level `(machine, position)` tiebreak,
/// so runs of equal keys split across machines — this is what lets a
/// high-degree vertex's edges occupy a *contiguous group of machines*
/// (the paper's input configuration `M(v)`).
///
/// The sort proceeds in `O(log_S P)` levels of `f`-way range partition
/// (`f ≈ S/4·keywords`): each level samples per-group splitters up an
/// aggregation tree, broadcasts them down, and routes records one hop
/// closer to their final range. A final exact rebalance (one machine
/// scan + one routing round) leaves every machine with `⌈n/p⌉` records
/// regardless of splitter quality. Total rounds: `O((1/γ)²)` in the
/// worst case from the per-level sampling trees — poly(1/γ), as the
/// Section 6 accounting requires (Goodrich et al. shave the extra
/// factor with pipelining that a simulator has no need to replicate).
pub fn sort_by_key<T: Record, K: Record + Ord>(
    sys: &mut MpcSystem,
    d: Dist<T>,
    op: &'static str,
    key: impl Fn(&T) -> K + Send + Sync,
) -> Result<Dist<T>> {
    let p = sys.machines();
    let n = d.len();
    if n == 0 {
        return Ok(d);
    }
    let cap = sys.cfg().capacity();
    let kwords = <(K, u64, u64)>::WORDS;
    // Range-partition arity `f` and per-node sample budget `b = 8f`
    // (8× splitter oversampling keeps bucket imbalance small), chosen so
    // a tree node's fan-in (f−1)·b·kwords ≈ 8f²·kwords stays within the
    // per-round budget.
    let f = (((cap / (8 * kwords.max(1))) as f64).sqrt() as usize).max(2);
    let b = (8 * f).max(8);

    let mut shards = d.into_shards();
    shards.par_iter_mut().for_each(|shard| {
        shard.sort_by_key(|a| key(a));
    });

    // Contiguous machine groups; every record lives inside its group's
    // machine range and belongs to that group's key range.
    let mut groups: Vec<(usize, usize)> = vec![(0, p)];

    let subsample = |mut samples: Vec<(K, u64, u64)>, limit: usize| -> Vec<(K, u64, u64)> {
        samples.sort();
        if samples.len() <= limit {
            return samples;
        }
        let step = samples.len() as f64 / limit as f64;
        (0..limit)
            .map(|i| samples[(i as f64 * step) as usize].clone())
            .collect()
    };

    while groups.iter().any(|&(lo, hi)| hi - lo > 1) {
        // --- Per-machine samples (decorated with (machine, position) so
        // equal keys split across subranges).
        let machine_samples: Vec<Vec<(K, u64, u64)>> = shards
            .par_iter()
            .enumerate()
            .map(|(src, shard)| {
                let decorate = |i: usize| (key(&shard[i]), src as u64, i as u64);
                if shard.len() <= b {
                    (0..shard.len()).map(decorate).collect()
                } else {
                    let step = shard.len() as f64 / b as f64;
                    (0..b)
                        .map(|i| decorate((i as f64 * step) as usize))
                        .collect()
                }
            })
            .collect();

        // --- Per-group sampling trees (all groups in parallel; rounds =
        // depth of the largest tree).
        let max_group = groups.iter().map(|&(lo, hi)| hi - lo).max().unwrap_or(1);
        let tree_depth = {
            let mut d = 0usize;
            let mut cover = 1usize;
            while cover < max_group {
                cover = cover.saturating_mul(f);
                d += 1;
            }
            d
        };
        let group_samples: Vec<Vec<(K, u64, u64)>> = groups
            .par_iter()
            .map(|&(lo, hi)| {
                let mut level: Vec<Vec<(K, u64, u64)>> = machine_samples[lo..hi].to_vec();
                while level.len() > 1 {
                    let g = level.len().div_ceil(f);
                    let mut next = Vec::with_capacity(g);
                    for gi in 0..g {
                        let a = gi * f;
                        let z = (a + f).min(level.len());
                        let mut merged = Vec::new();
                        for node in &level[a..z] {
                            merged.extend(node.iter().cloned());
                        }
                        next.push(subsample(merged, b));
                    }
                    level = next;
                }
                level.pop().unwrap_or_default()
            })
            .collect();
        for _ in 0..tree_depth {
            sys.charge_round(
                op,
                b * kwords,
                (f - 1) * b * kwords,
                (p * b * kwords) as u64,
            )?;
        }

        // --- Per-group splitters and subranges; broadcast splitters down
        // the same trees (charged as tree_depth rounds).
        struct Plan<K> {
            lo: usize,
            subranges: Vec<(usize, usize)>,
            splitters: Vec<(K, u64, u64)>,
        }
        let plans: Vec<Plan<K>> = groups
            .iter()
            .zip(group_samples)
            .map(|(&(lo, hi), samples)| {
                let g = hi - lo;
                let nsub = f.min(g).max(1);
                // Subranges: split [lo, hi) into nsub near-equal parts.
                let mut subranges = Vec::with_capacity(nsub);
                let base = g / nsub;
                let extra = g % nsub;
                let mut cur = lo;
                for i in 0..nsub {
                    let len = base + usize::from(i < extra);
                    subranges.push((cur, cur + len));
                    cur += len;
                }
                let splitters: Vec<(K, u64, u64)> = if samples.is_empty() {
                    vec![]
                } else {
                    (1..nsub)
                        .map(|i| samples[(i * samples.len()) / nsub].clone())
                        .collect()
                };
                Plan {
                    lo,
                    subranges,
                    splitters,
                }
            })
            .collect();
        for _ in 0..tree_depth.max(1) {
            sys.charge_round(
                op,
                f * (f - 1) * kwords,
                (f - 1) * kwords,
                (p * kwords) as u64,
            )?;
        }

        // --- Route every record one level down (one round).
        let mut plan_of_machine: Vec<usize> = vec![0; p];
        for (pi, plan) in plans.iter().enumerate() {
            let (lo, hi) = groups[pi];
            for slot in plan_of_machine.iter_mut().take(hi).skip(lo) {
                *slot = pi;
            }
            debug_assert_eq!(plan.lo, lo);
        }
        let dests: Vec<Vec<usize>> = shards
            .par_iter()
            .enumerate()
            .map(|(src, shard)| {
                let plan = &plans[plan_of_machine[src]];
                // Round-robin within each subrange (offset by the source
                // index so different sources start at different slots):
                // every source spreads its contribution evenly, keeping
                // bucket imbalance bounded by splitter quality alone.
                let mut cursor = vec![src; plan.subranges.len()];
                (0..shard.len())
                    .map(|i| {
                        let probe = (key(&shard[i]), src as u64, i as u64);
                        let bucket = plan
                            .splitters
                            .partition_point(|s| *s <= probe)
                            .min(plan.subranges.len() - 1);
                        let (slo, shi) = plan.subranges[bucket];
                        let width = (shi - slo).max(1);
                        let slot = slo + cursor[bucket] % width;
                        cursor[bucket] += 1;
                        slot
                    })
                    .collect()
            })
            .collect();
        let routed = route_with(sys, Dist::from_shards(shards), op, &dests)?;
        shards = routed.into_shards();
        shards.par_iter_mut().for_each(|shard| {
            shard.sort_by_key(|a| key(a));
        });
        groups = plans.into_iter().flat_map(|plan| plan.subranges).collect();
        groups.retain(|&(lo, hi)| hi > lo);
    }

    // --- Exact rebalance: one prefix scan over machine counts plus one
    // routing round leaves every machine with ⌈n/p⌉ records, independent
    // of splitter quality. Records arrive in (source, position) order =
    // global key order, so shards stay sorted.
    let counts: Vec<u64> = shards.iter().map(|s| s.len() as u64).collect();
    let offsets = machine_scan(sys, counts, 0u64, op, |a, b| a + b)?;
    let q = n.div_ceil(p).max(1);
    let rb_dests: Vec<Vec<usize>> = shards
        .par_iter()
        .zip(offsets.par_iter())
        .map(|(shard, &off)| {
            (0..shard.len())
                .map(|i| ((off as usize + i) / q).min(p - 1))
                .collect()
        })
        .collect();
    let balanced = route_with(sys, Dist::from_shards(shards), op, &rb_dests)?;
    Ok(balanced)
}

/// Segmented broadcast over a *sorted* collection: records for which
/// `extract` returns `Some(u)` are group leaders; every subsequent record
/// (within the global order, up to the next leader) receives the leader's
/// value via `apply`. Group boundaries may span machines; the cross-
/// machine carry travels through one exclusive machine scan.
pub fn forward_fill<T: Record, U: Record>(
    sys: &mut MpcSystem,
    d: &mut Dist<T>,
    op: &'static str,
    extract: impl Fn(&T) -> Option<U> + Send + Sync,
    apply: impl Fn(&mut T, &U) + Send + Sync,
) -> Result<()> {
    // Per-machine trailing label (the value a following machine would
    // inherit if it had no leader of its own).
    let summaries: Vec<Option<U>> = d.per_machine(|shard| {
        let mut last = None;
        for rec in shard {
            if let Some(u) = extract(rec) {
                last = Some(u);
            }
        }
        last
    });
    let incoming = machine_scan(sys, summaries, None, op, |a, b| b.clone().or(a.clone()))?;

    // Local fill with the scanned carry.
    let shards = std::mem::replace(d, Dist::empty(sys)).into_shards();
    let filled: Vec<Vec<T>> = shards
        .into_par_iter()
        .zip(incoming.into_par_iter())
        .map(|(mut shard, carry_in)| {
            let mut carry = carry_in;
            for rec in &mut shard {
                if let Some(u) = extract(rec) {
                    carry = Some(u);
                } else if let Some(c) = &carry {
                    apply(rec, c);
                }
            }
            shard
        })
        .collect();
    *d = Dist::from_shards(filled);
    Ok(())
}

/// Semisort + aggregate: routes records by a caller-supplied `u64` key
/// (one round), then folds records with equal keys machine-locally with
/// `combine`. Output: one `(key, value)` record per distinct key, sorted
/// by key within each machine.
pub fn aggregate_by_key<T: Record, V: Record>(
    sys: &mut MpcSystem,
    d: Dist<T>,
    op: &'static str,
    key: impl Fn(&T) -> u64 + Send + Sync,
    value: impl Fn(&T) -> V + Send + Sync,
    combine: impl Fn(&V, &V) -> V + Send + Sync,
) -> Result<Dist<(u64, V)>> {
    let p = sys.machines();
    let routed = route(sys, d, op, |rec, _| {
        (splitmix64(key(rec)) % p as u64) as usize
    })?;
    let shards = routed.into_shards();
    let folded: Vec<Vec<(u64, V)>> = shards
        .into_par_iter()
        .map(|shard| {
            let mut map: std::collections::BTreeMap<u64, V> = std::collections::BTreeMap::new();
            for rec in shard {
                let k = key(&rec);
                let v = value(&rec);
                map.entry(k)
                    .and_modify(|acc| *acc = combine(acc, &v))
                    .or_insert(v);
            }
            map.into_iter().collect()
        })
        .collect();
    let out = Dist::from_shards(folded);
    let mut sys2 = sys.clone();
    sys2.check_all_storage(out.shards(), op)?;
    *sys = sys2;
    Ok(out)
}

/// Global record count via the aggregation tree.
pub fn count_records<T: Record>(sys: &mut MpcSystem, d: &Dist<T>, op: &'static str) -> Result<u64> {
    let per: Vec<u64> = d.per_machine(|s| s.len() as u64);
    reduce_tree(sys, per, op, |a, b| a + b)
}

/// Global maximum of a per-record statistic via the aggregation tree
/// (`0` for the empty collection).
pub fn global_max<T: Record>(
    sys: &mut MpcSystem,
    d: &Dist<T>,
    op: &'static str,
    stat: impl Fn(&T) -> u64 + Send + Sync,
) -> Result<u64> {
    let per: Vec<u64> = d.per_machine(|s| s.iter().map(&stat).max().unwrap_or(0));
    reduce_tree(sys, per, op, |a, b| *a.max(b))
}

/// Broadcasts one small value from the coordinator to all machines
/// (returns it; charges the tree rounds).
pub fn broadcast_value<T: Record>(sys: &mut MpcSystem, v: T, op: &'static str) -> Result<T> {
    let copies = broadcast_all(sys, vec![v], op)?;
    copies
        .into_iter()
        .next()
        .and_then(|mut c| c.pop())
        .ok_or(crate::MpcError::ShapeMismatch {
            what: "broadcast copies (one per machine)",
            expected: 1,
            got: 0,
            op,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    fn sys(words: usize, machines: usize, slack: usize) -> MpcSystem {
        MpcSystem::new(MpcConfig::explicit(words, machines, slack))
    }

    #[test]
    fn sort_orders_globally() {
        let mut s = sys(64, 8, 4);
        let data: Vec<u64> = (0..100).map(|i| splitmix64(i) % 1000).collect();
        let d = Dist::distribute(&mut s, data.clone()).unwrap();
        let sorted = sort_by_key(&mut s, d, "sort", |&x| x).unwrap();
        let flat = sorted.collect_out_of_model();
        let mut expect = data;
        expect.sort();
        assert_eq!(flat, expect);
        assert!(s.rounds() >= 2, "sort must cost communication rounds");
    }

    #[test]
    fn sort_splits_equal_keys_across_machines() {
        // All keys equal: the tiebreak must spread them out rather than
        // overload one machine.
        let mut s = sys(32, 16, 2);
        let data: Vec<u64> = vec![7; 100];
        let d = Dist::distribute(&mut s, data).unwrap();
        let sorted = sort_by_key(&mut s, d, "sort", |&x| x).unwrap();
        assert_eq!(sorted.len(), 100);
        assert!(
            sorted.max_shard_words() <= s.cfg().capacity(),
            "equal keys must not pile up on one machine"
        );
    }

    #[test]
    fn sort_by_tuple_key() {
        let mut s = sys(64, 4, 4);
        let data: Vec<(u64, u64)> = (0..50u64).map(|i| (i % 5, 49 - i)).collect();
        let d = Dist::distribute(&mut s, data).unwrap();
        let sorted = sort_by_key(&mut s, d, "sort", |r| *r).unwrap();
        let flat = sorted.collect_out_of_model();
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn forward_fill_carries_across_machines() {
        let mut s = sys(8, 4, 2);
        // Records: (is_leader_value, payload). Leaders carry Some.
        // Layout across 4 machines of 2 records each:
        //   [L(5), d] [d, d] [L(9), d] [d, d]
        let recs: Vec<(u64, u64)> = vec![
            (5, u64::MAX),
            (0, 0),
            (0, 0),
            (0, 0),
            (9, u64::MAX),
            (0, 0),
            (0, 0),
            (0, 0),
        ];
        let mut d = Dist::distribute(&mut s, recs).unwrap();
        forward_fill(
            &mut s,
            &mut d,
            "fill",
            |r| if r.1 == u64::MAX { Some(r.0) } else { None },
            |r, &u| r.1 = u,
        )
        .unwrap();
        let flat = d.collect_out_of_model();
        assert_eq!(flat[1].1, 5);
        assert_eq!(flat[2].1, 5, "carry must cross the machine boundary");
        assert_eq!(flat[3].1, 5);
        assert_eq!(flat[5].1, 9);
        assert_eq!(flat[7].1, 9);
    }

    #[test]
    fn aggregate_min_by_key() {
        let mut s = sys(64, 4, 4);
        let recs: Vec<(u64, u64)> = vec![(1, 10), (2, 5), (1, 3), (2, 20), (3, 7)];
        let d = Dist::distribute(&mut s, recs).unwrap();
        let agg = aggregate_by_key(&mut s, d, "agg", |r| r.0, |r| r.1, |a, b| *a.min(b)).unwrap();
        let mut flat = agg.collect_out_of_model();
        flat.sort();
        assert_eq!(flat, vec![(1, 3), (2, 5), (3, 7)]);
        assert_eq!(s.rounds(), 1, "semisort is one routing round");
    }

    #[test]
    fn count_and_max() {
        let mut s = sys(16, 4, 2);
        let d = Dist::distribute(&mut s, (0u64..37).collect()).unwrap();
        assert_eq!(count_records(&mut s, &d, "count").unwrap(), 37);
        assert_eq!(global_max(&mut s, &d, "max", |&x| x).unwrap(), 36);
    }

    #[test]
    fn broadcast_value_roundtrip() {
        let mut s = sys(16, 8, 2);
        let v = broadcast_value(&mut s, (42u64, 7u64), "b").unwrap();
        assert_eq!(v, (42, 7));
        assert!(s.rounds() >= 1);
    }

    #[test]
    fn empty_sort_is_noop() {
        let mut s = sys(16, 4, 2);
        let d: Dist<u64> = Dist::empty(&s);
        let sorted = sort_by_key(&mut s, d, "sort", |&x| x).unwrap();
        assert!(sorted.is_empty());
        assert_eq!(s.rounds(), 0);
    }
}
