//! The raw communication layer: one-round all-to-all routing and the
//! `n^γ`-ary aggregation trees of Section 6.
//!
//! Every function here executes real data movement between the simulated
//! machines, charges the rounds it actually uses, and validates the
//! per-round bandwidth and per-machine storage constraints. Records a
//! machine keeps for itself are free (no self-traffic), matching the
//! model.
//!
//! Parallel-safety: per-machine work (outbox assembly, local folds) runs
//! on the rayon pool. Correctness relies on the shim's order-preserving
//! `collect` — e.g. [`route`] delivers records in (source machine, source
//! position) order, which [`crate::primitives::sort_by_key`]'s rebalance
//! step depends on — so results are identical at every thread count.
//!
//! Executors: every primitive charges rounds/traffic through shared code
//! and only then moves the data, either in-process (`deliver`, the loop
//! executor) or through the `spanner-net` thread-per-machine router
//! ([`fn@spanner_net::exchange`], the threaded executor). The physical
//! exchange delivers in the same (source machine, source position) order,
//! so both executors are bit-identical; wire traffic observed by the
//! exchange feeds the network report (self-delivery stays free, and
//! synthetic pipelined rounds — e.g. chunked broadcast — are priced from
//! the shared charge formulas even where the physical waves differ).

use rayon::prelude::*;
use spanner_net::exchange;

use crate::dist::Dist;
use crate::record::Record;
use crate::system::MpcSystem;
use crate::{MpcError, Result};

/// One-round all-to-all: moves every record of `d` to the machine chosen
/// by `dest` (which receives the record and its current machine index).
///
/// Bandwidth accounting: a machine's send volume is the words of its
/// records with `dest != self`; its receive volume is the words arriving
/// from other machines.
pub fn route<T: Record>(
    sys: &mut MpcSystem,
    d: Dist<T>,
    op: &'static str,
    dest: impl Fn(&T, usize) -> usize + Send + Sync,
) -> Result<Dist<T>> {
    let p = sys.machines();
    let shards = d.into_shards();

    // Each source machine assembles its outboxes in parallel.
    let outboxes: Vec<Vec<(usize, T)>> = shards
        .into_par_iter()
        .enumerate()
        .map(|(src, shard)| {
            shard
                .into_iter()
                .map(|rec| {
                    let dst = dest(&rec, src);
                    (dst, rec)
                })
                .collect()
        })
        .collect();

    // Validate destinations and tally traffic.
    let mut sent = vec![0usize; p];
    let mut received = vec![0usize; p];
    for (src, outbox) in outboxes.iter().enumerate() {
        for (dst, _) in outbox {
            if *dst >= p {
                return Err(MpcError::BadDestination {
                    dest: *dst,
                    num_machines: p,
                });
            }
            if *dst != src {
                sent[src] += T::WORDS;
                received[*dst] += T::WORDS;
            }
        }
    }
    let max_sent = sent.iter().copied().max().unwrap_or(0);
    let max_recv = received.iter().copied().max().unwrap_or(0);
    let total: u64 = sent.iter().map(|&x| x as u64).sum();
    sys.charge_round(op, max_sent, max_recv, total)?;

    // Deliver deterministically: destination shards ordered by source
    // machine, then by position within the source shard.
    let new_shards = match sys.pool_handle() {
        Some(pool) => {
            let (shards, sent_w, recv_w) = exchange(&pool, T::WORDS, outboxes);
            sys.note_exchange_traffic(&sent_w, &recv_w);
            shards
        }
        None => deliver(p, outboxes),
    };
    sys.check_all_storage(&new_shards, op)?;
    Ok(Dist::from_shards(new_shards))
}

/// The delivery step shared by [`route`] / [`route_with`]: moves every
/// `(destination, record)` pair into its destination shard, preserving
/// (source machine, source position) order within each shard.
///
/// Runs in two parallel passes — per-source bucketing, then
/// per-destination concatenation over the (sequentially) transposed
/// buckets — so the actual record movement parallelises while the
/// output stays bit-identical at every thread count (both passes use
/// the shim's order-preserving collect; the transpose only moves `Vec`
/// headers).
fn deliver<T: Record>(p: usize, outboxes: Vec<Vec<(usize, T)>>) -> Vec<Vec<T>> {
    let buckets: Vec<Vec<Vec<T>>> = outboxes
        .into_par_iter()
        .map(|outbox| {
            let mut per_dst: Vec<Vec<T>> = vec![Vec::new(); p];
            for (dst, rec) in outbox {
                per_dst[dst].push(rec);
            }
            per_dst
        })
        .collect();
    let mut transposed: Vec<Vec<Vec<T>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for per_dst in buckets {
        for (dst, bucket) in per_dst.into_iter().enumerate() {
            transposed[dst].push(bucket);
        }
    }
    transposed
        .into_par_iter()
        .map(|parts| {
            let mut shard = Vec::with_capacity(parts.iter().map(Vec::len).sum());
            for part in parts {
                shard.extend(part);
            }
            shard
        })
        .collect()
}

/// One-round all-to-all with *precomputed* destinations: `dests[m][i]` is
/// the destination of record `i` of machine `m`. Used when destinations
/// depend on a record's position (e.g. sample sort, where the tiebreak is
/// the record's current machine/index) rather than only its contents.
pub fn route_with<T: Record>(
    sys: &mut MpcSystem,
    d: Dist<T>,
    op: &'static str,
    dests: &[Vec<usize>],
) -> Result<Dist<T>> {
    let p = sys.machines();
    let shards = d.into_shards();
    if shards.len() != dests.len() {
        return Err(MpcError::ShapeMismatch {
            what: "destination vectors (one per machine)",
            expected: shards.len(),
            got: dests.len(),
            op,
        });
    }

    let mut sent = vec![0usize; p];
    let mut received = vec![0usize; p];
    for (src, ds) in dests.iter().enumerate() {
        if ds.len() != shards[src].len() {
            return Err(MpcError::ShapeMismatch {
                what: "destinations (one per record)",
                expected: shards[src].len(),
                got: ds.len(),
                op,
            });
        }
        for &dst in ds {
            if dst >= p {
                return Err(MpcError::BadDestination {
                    dest: dst,
                    num_machines: p,
                });
            }
            if dst != src {
                sent[src] += T::WORDS;
                received[dst] += T::WORDS;
            }
        }
    }
    let max_sent = sent.iter().copied().max().unwrap_or(0);
    let max_recv = received.iter().copied().max().unwrap_or(0);
    let total: u64 = sent.iter().map(|&x| x as u64).sum();
    sys.charge_round(op, max_sent, max_recv, total)?;

    let outboxes: Vec<Vec<(usize, T)>> = shards
        .into_par_iter()
        .enumerate()
        .map(|(src, shard)| {
            shard
                .into_iter()
                .enumerate()
                .map(|(i, rec)| (dests[src][i], rec))
                .collect()
        })
        .collect();
    let new_shards = match sys.pool_handle() {
        Some(pool) => {
            let (shards, sent_w, recv_w) = exchange(&pool, T::WORDS, outboxes);
            sys.note_exchange_traffic(&sent_w, &recv_w);
            shards
        }
        None => deliver(p, outboxes),
    };
    sys.check_all_storage(&new_shards, op)?;
    Ok(Dist::from_shards(new_shards))
}

/// Direct gather: every machine sends its shard to `root` in one round.
/// Legal whenever the whole collection fits the root machine — e.g. the
/// paper's Section 7 "send the spanner to one machine" step in the
/// near-linear regime.
pub fn gather_to_machine<T: Record>(
    sys: &mut MpcSystem,
    d: Dist<T>,
    root: usize,
    op: &'static str,
) -> Result<Vec<T>> {
    let routed = route(sys, d, op, |_, _| root)?;
    let mut shards = routed.into_shards();
    Ok(std::mem::take(&mut shards[root]))
}

/// Tree reduction of one summary per machine (the paper's **Find
/// Minimum** shape): combines all summaries with `combine` using an
/// f-ary aggregation tree of fan-out `cfg.fanout(T::WORDS)`.
/// Rounds charged: tree depth. Returns the root's combined value.
pub fn reduce_tree<T: Record>(
    sys: &mut MpcSystem,
    per_machine: Vec<T>,
    op: &'static str,
    combine: impl Fn(&T, &T) -> T,
) -> Result<T> {
    if per_machine.is_empty() || per_machine.len() != sys.machines() {
        return Err(MpcError::ShapeMismatch {
            what: "summaries (one per machine)",
            expected: sys.machines(),
            got: per_machine.len(),
            op,
        });
    }
    let f = sys.cfg().fanout(T::WORDS);
    let mut level: Vec<T> = per_machine;
    // Which physical machine holds each summary of the current level
    // (group leaders keep their machine as levels shrink).
    let mut machine_of: Vec<usize> = (0..level.len()).collect();
    while level.len() > 1 {
        // Each group of f consecutive nodes sends to its leader. The
        // charge tally is shared by both executors.
        let groups = level.len().div_ceil(f);
        let mut max_recv = 0usize;
        let mut total = 0u64;
        for g in 0..groups {
            let lo = g * f;
            let hi = (lo + f).min(level.len());
            let incoming = (hi - lo - 1) * T::WORDS;
            max_recv = max_recv.max(incoming);
            total += incoming as u64;
        }
        sys.charge_round(op, T::WORDS, max_recv, total)?;

        // Group members, delivered to each leader: physically through
        // the router (threaded) or by slicing the level (loop). The
        // exchange delivers in source-machine order, which is exactly
        // the level order within each group.
        let grouped: Vec<Vec<T>> = match sys.pool_handle() {
            Some(pool) => {
                let mut outboxes: Vec<Vec<(usize, T)>> =
                    (0..pool.machines()).map(|_| Vec::new()).collect();
                for (i, item) in level.iter().enumerate() {
                    let leader = machine_of[(i / f) * f];
                    outboxes[machine_of[i]].push((leader, item.clone()));
                }
                let (mut shards, sent_w, recv_w) = exchange(&pool, T::WORDS, outboxes);
                sys.note_exchange_traffic(&sent_w, &recv_w);
                (0..groups)
                    .map(|g| std::mem::take(&mut shards[machine_of[g * f]]))
                    .collect()
            }
            None => (0..groups)
                .map(|g| {
                    let lo = g * f;
                    let hi = (lo + f).min(level.len());
                    level[lo..hi].to_vec()
                })
                .collect(),
        };
        level = grouped
            .into_iter()
            .map(|group| {
                let mut items = group.into_iter();
                let mut acc = items.next().expect("groups are non-empty");
                for item in items {
                    acc = combine(&acc, &item);
                }
                acc
            })
            .collect();
        machine_of = (0..groups).map(|g| machine_of[g * f]).collect();
    }
    Ok(level
        .into_iter()
        .next()
        .expect("reduction of >=1 summaries is non-empty"))
}

/// Tree broadcast (the paper's **Broadcast** subroutine): replicates a
/// small payload from `src` to every machine along an f-ary tree.
/// Rounds charged: tree depth. Returns one copy per machine (they are all
/// identical; the vector form keeps the "every machine now knows it"
/// reading explicit).
pub fn broadcast_all<T: Record>(
    sys: &mut MpcSystem,
    payload: Vec<T>,
    op: &'static str,
) -> Result<Vec<Vec<T>>> {
    let p = sys.machines();
    let cap = sys.cfg().capacity();
    let payload_words = payload.len() * T::WORDS;
    if payload_words > cap {
        return Err(MpcError::MemoryExceeded {
            machine: 0,
            words: payload_words,
            capacity: cap,
            op,
        });
    }
    if p <= 1 || payload.is_empty() {
        return Ok(vec![payload; p]);
    }
    // Pipelined chunked tree broadcast: each chunk is at most half the
    // per-round budget so the tree fan-out stays ≥ 2, and chunks stream
    // down the tree back-to-back (depth + chunks − 1 rounds).
    let recs_per_chunk = ((cap / 2) / T::WORDS.max(1)).max(1);
    let chunks = payload.len().div_ceil(recs_per_chunk);
    let chunk_words = recs_per_chunk.min(payload.len()) * T::WORDS;
    let f = (cap / chunk_words.max(1)).max(2);
    let mut depth = 0usize;
    let mut cover = 1usize;
    while cover < p {
        cover = cover.saturating_mul(f);
        depth += 1;
    }
    let rounds = depth + chunks - 1;
    let total_traffic = ((p - 1) * payload_words) as u64;
    let per_round_total = total_traffic / rounds as u64;
    for r in 0..rounds {
        let leftover = if r == 0 {
            total_traffic % rounds as u64
        } else {
            0
        };
        sys.charge_round(
            op,
            (f * chunk_words).min(cap),
            chunk_words,
            per_round_total + leftover,
        )?;
    }
    // Threaded executor: physically replicate along the f-ary tree. The
    // waves follow the unpipelined tree (depth waves, machine j fetches
    // from j % cover), moving the same (p-1)·payload total the charge
    // loop above priced into the pipelined round schedule.
    if let Some(pool) = sys.pool_handle() {
        let mut cover = 1usize;
        while cover < p {
            let next_cover = cover.saturating_mul(f).min(p);
            let mut outboxes: Vec<Vec<(usize, T)>> = (0..p).map(|_| Vec::new()).collect();
            for j in cover..next_cover {
                let src = j % cover;
                for rec in &payload {
                    outboxes[src].push((j, rec.clone()));
                }
            }
            let (_shards, sent_w, recv_w) = exchange(&pool, T::WORDS, outboxes);
            sys.note_exchange_traffic(&sent_w, &recv_w);
            cover = next_cover;
        }
    }
    Ok(vec![payload; p])
}

/// Exclusive prefix scan over one summary per machine (up-sweep +
/// down-sweep on the f-ary tree). `out[i]` is the combination of the
/// summaries of machines `0..i` (identity for machine 0).
///
/// This is the workhorse behind segmented broadcasts / forward-fills over
/// sorted collections, which is how the paper's "leader of M(v) informs
/// the group" steps are realised when a vertex's edges span machines.
pub fn machine_scan<T: Record>(
    sys: &mut MpcSystem,
    per_machine: Vec<T>,
    identity: T,
    op: &'static str,
    combine: impl Fn(&T, &T) -> T + Copy,
) -> Result<Vec<T>> {
    let p = per_machine.len();
    if p != sys.machines() {
        return Err(MpcError::ShapeMismatch {
            what: "summaries (one per machine)",
            expected: sys.machines(),
            got: p,
            op,
        });
    }
    if p == 0 {
        return Ok(vec![]);
    }
    let f = sys.cfg().fanout(T::WORDS);

    // Up-sweep: build the levels of group totals. `maps[l][i]` is the
    // physical machine holding summary `i` of level `l` (group leaders).
    let mut levels: Vec<Vec<T>> = vec![per_machine];
    let mut maps: Vec<Vec<usize>> = vec![(0..p).collect()];
    loop {
        let cur_len = levels.last().expect("non-empty").len();
        if cur_len <= 1 {
            break;
        }
        let groups = cur_len.div_ceil(f);
        // Shared charge tally: each leader receives its group members.
        let mut max_recv = 0usize;
        let mut total = 0u64;
        for g in 0..groups {
            let lo = g * f;
            let hi = (lo + f).min(cur_len);
            let incoming = (hi - lo - 1) * T::WORDS;
            max_recv = max_recv.max(incoming);
            total += incoming as u64;
        }
        sys.charge_round(op, T::WORDS, max_recv, total)?;

        let cur_map = maps.last().expect("non-empty").clone();
        let grouped: Vec<Vec<T>> = match sys.pool_handle() {
            Some(pool) => {
                let cur = levels.last().expect("non-empty");
                let mut outboxes: Vec<Vec<(usize, T)>> =
                    (0..pool.machines()).map(|_| Vec::new()).collect();
                for (i, item) in cur.iter().enumerate() {
                    let leader = cur_map[(i / f) * f];
                    outboxes[cur_map[i]].push((leader, item.clone()));
                }
                let (mut shards, sent_w, recv_w) = exchange(&pool, T::WORDS, outboxes);
                sys.note_exchange_traffic(&sent_w, &recv_w);
                (0..groups)
                    .map(|g| std::mem::take(&mut shards[cur_map[g * f]]))
                    .collect()
            }
            None => {
                let cur = levels.last().expect("non-empty");
                (0..groups)
                    .map(|g| {
                        let lo = g * f;
                        let hi = (lo + f).min(cur.len());
                        cur[lo..hi].to_vec()
                    })
                    .collect()
            }
        };
        let next: Vec<T> = grouped
            .into_iter()
            .map(|group| {
                let mut items = group.into_iter();
                let mut acc = items.next().expect("groups are non-empty");
                for item in items {
                    acc = combine(&acc, &item);
                }
                acc
            })
            .collect();
        let next_map: Vec<usize> = (0..groups).map(|g| cur_map[g * f]).collect();
        levels.push(next);
        maps.push(next_map);
    }

    // Down-sweep: push exclusive prefixes back down.
    let depth = levels.len();
    let mut prefixes: Vec<T> = vec![identity.clone()];
    for lvl in (0..depth - 1).rev() {
        let cur = &levels[lvl];
        let mut next_prefixes = Vec::with_capacity(cur.len());
        let mut max_sent = 0usize;
        let mut total = 0u64;
        for (g, parent_prefix) in prefixes.iter().enumerate() {
            let lo = g * f;
            let hi = (lo + f).min(cur.len());
            let mut acc = parent_prefix.clone();
            let sent = (hi - lo) * T::WORDS;
            max_sent = max_sent.max(sent);
            total += sent as u64;
            for item in &cur[lo..hi] {
                next_prefixes.push(acc.clone());
                acc = combine(&acc, item);
            }
        }
        sys.charge_round(op, max_sent, T::WORDS, total)?;
        // Threaded executor: each parent physically sends every child
        // its prefix (the leader child is the parent's own machine, so
        // that hop is free on the wire; the charge above keeps the
        // model's "leader informs its group" formula).
        if let Some(pool) = sys.pool_handle() {
            let mut outboxes: Vec<Vec<(usize, T)>> =
                (0..pool.machines()).map(|_| Vec::new()).collect();
            for (i, prefix) in next_prefixes.iter().enumerate() {
                let parent = maps[lvl + 1][i / f];
                let child = maps[lvl][i];
                outboxes[parent].push((child, prefix.clone()));
            }
            let (mut shards, sent_w, recv_w) = exchange(&pool, T::WORDS, outboxes);
            sys.note_exchange_traffic(&sent_w, &recv_w);
            next_prefixes = maps[lvl]
                .iter()
                .map(|&m| {
                    std::mem::take(&mut shards[m])
                        .into_iter()
                        .next()
                        .expect("each machine holds exactly one prefix")
                })
                .collect();
        }
        prefixes = next_prefixes;
    }
    debug_assert_eq!(prefixes.len(), p);
    Ok(prefixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    fn sys(words: usize, machines: usize, slack: usize) -> MpcSystem {
        MpcSystem::new(MpcConfig::explicit(words, machines, slack))
    }

    #[test]
    fn route_moves_records() {
        let mut s = sys(16, 4, 1);
        let d = Dist::distribute(&mut s, (0u64..8).collect()).unwrap();
        let routed = route(&mut s, d, "t", |&x, _| (x % 4) as usize).unwrap();
        assert_eq!(s.rounds(), 1);
        for (m, shard) in routed.shards().iter().enumerate() {
            assert!(shard.iter().all(|&x| (x % 4) as usize == m));
        }
        assert_eq!(routed.len(), 8);
    }

    #[test]
    fn route_detects_bandwidth_violation() {
        // 1-word capacity, everything routed to machine 0.
        let mut s = sys(2, 4, 1);
        let d = Dist::distribute(&mut s, (0u64..8).collect()).unwrap();
        let err = route(&mut s, d, "t", |_, _| 0).unwrap_err();
        assert!(matches!(
            err,
            MpcError::BandwidthExceeded { .. } | MpcError::MemoryExceeded { .. }
        ));
    }

    #[test]
    fn route_with_rejects_mis_shaped_destinations() {
        // Wrong number of destination vectors.
        let mut s = sys(16, 2, 1);
        let d = Dist::distribute(&mut s, vec![1u64, 2]).unwrap();
        let err = route_with(&mut s, d, "t", &[vec![0]]).unwrap_err();
        assert!(matches!(err, MpcError::ShapeMismatch { .. }));
        // Wrong number of destinations for one machine's records.
        let mut s = sys(16, 2, 1);
        let d = Dist::distribute(&mut s, vec![1u64, 2]).unwrap();
        let err = route_with(&mut s, d, "t", &[vec![0, 0, 0], vec![1]]).unwrap_err();
        assert!(matches!(err, MpcError::ShapeMismatch { .. }));
    }

    #[test]
    fn tree_primitives_reject_wrong_summary_count() {
        let mut s = sys(16, 4, 1);
        let err = reduce_tree(&mut s, vec![1u64, 2], "min", |a, b| *a.min(b)).unwrap_err();
        assert!(matches!(err, MpcError::ShapeMismatch { .. }));
        let err = machine_scan(&mut s, vec![1u64], 0, "scan", |a, b| a + b).unwrap_err();
        assert!(matches!(err, MpcError::ShapeMismatch { .. }));
    }

    #[test]
    fn route_rejects_bad_destination() {
        let mut s = sys(16, 2, 1);
        let d = Dist::distribute(&mut s, vec![1u64]).unwrap();
        let err = route(&mut s, d, "t", |_, _| 7).unwrap_err();
        assert!(matches!(err, MpcError::BadDestination { dest: 7, .. }));
    }

    #[test]
    fn self_delivery_is_free() {
        let mut s = sys(4, 2, 1);
        let d = Dist::distribute(&mut s, vec![0u64, 1, 2, 3]).unwrap();
        // Keep everything where it is: zero traffic.
        let _ = route(&mut s, d, "t", |_, src| src).unwrap();
        assert_eq!(s.metrics().total_comm_words, 0);
        assert_eq!(s.rounds(), 1);
    }

    #[test]
    fn gather_collects_everything() {
        let mut s = sys(64, 4, 1);
        let d = Dist::distribute(&mut s, (0u64..12).collect()).unwrap();
        let all = gather_to_machine(&mut s, d, 2, "g").unwrap();
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn reduce_tree_computes_min_and_charges_depth() {
        let machines = 27;
        // fanout(1 word) = 3 → depth 3 over 27 machines.
        let mut s = sys(3, machines, 4);
        let vals: Vec<u64> = (0..machines as u64).map(|i| (i * 7) % 31).collect();
        let expected = *vals.iter().min().unwrap();
        let got = reduce_tree(&mut s, vals, "min", |a, b| *a.min(b)).unwrap();
        assert_eq!(got, expected);
        assert_eq!(s.rounds(), 3);
    }

    #[test]
    fn broadcast_reaches_everyone_in_log_rounds() {
        let mut s = sys(4, 16, 1);
        let copies = broadcast_all(&mut s, vec![42u64], "b").unwrap();
        assert_eq!(copies.len(), 16);
        assert!(copies.iter().all(|c| c == &vec![42u64]));
        // fanout = capacity/1 = 4 → coverage 1,4,16 → 2 rounds.
        assert_eq!(s.rounds(), 2);
    }

    #[test]
    fn broadcast_rejects_oversized_payload() {
        let mut s = sys(2, 4, 1);
        let err = broadcast_all(&mut s, vec![0u64; 10], "b").unwrap_err();
        assert!(matches!(err, MpcError::MemoryExceeded { .. }));
    }

    #[test]
    fn machine_scan_is_exclusive_prefix() {
        let machines = 9;
        let mut s = sys(3, machines, 4);
        let vals: Vec<u64> = (1..=machines as u64).collect();
        let prefixes = machine_scan(&mut s, vals, 0u64, "scan", |a, b| a + b).unwrap();
        // Exclusive prefix sums of 1..=9.
        let expected: Vec<u64> = (0..machines as u64).map(|i| i * (i + 1) / 2).collect();
        assert_eq!(prefixes, expected);
        // depth = ceil(log_3 9) = 2 → up-sweep 2 + down-sweep 2.
        assert_eq!(s.rounds(), 4);
    }

    #[test]
    fn machine_scan_with_option_semantics() {
        // The forward-fill combine: "rightmost Some wins".
        let mut s = sys(8, 4, 2);
        let vals: Vec<Option<u64>> = vec![None, Some(7), None, Some(9)];
        let prefixes = machine_scan(&mut s, vals, None, "fill", |a, b| b.or(*a)).unwrap();
        assert_eq!(prefixes, vec![None, None, Some(7), Some(7)]);
    }

    #[test]
    fn single_machine_scan_is_trivial() {
        let mut s = sys(8, 1, 1);
        let prefixes = machine_scan(&mut s, vec![5u64], 0, "scan", |a, b| a + b).unwrap();
        assert_eq!(prefixes, vec![0]);
        assert_eq!(s.rounds(), 0);
    }
}
