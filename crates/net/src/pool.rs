//! The thread-per-machine execution pool and the round barrier.
//!
//! [`MachinePool`] runs one OS thread per simulated machine, parked on a
//! tracked condvar between rounds. [`MachinePool::run_round`] publishes
//! one task, wakes every machine thread, and blocks until each has
//! executed it exactly once — the MPC model's synchronous round, made
//! literal. [`RoundBarrier`] is the in-round rendezvous the exchange
//! uses so nobody collects messages before everybody has posted.
//!
//! Everything synchronises through `spanner-sync` tracked primitives,
//! so `--features lock-audit` checks lock ordering and condvar
//! discipline on the executor exactly as it does on the serving stack.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

use spanner_sync::{TrackedCondvar, TrackedMutex};

/// A lifetime-erased pointer to the current round's task.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (concurrent shared calls are allowed by
// its type) and the pointer never outlives the `run_round` borrow it was
// erased from — the coordinator blocks until every machine thread has
// finished calling it and clears the slot before returning.
unsafe impl Send for TaskPtr {}

struct PoolState {
    /// Bumped once per round; workers run the task when it changes.
    epoch: u64,
    task: Option<TaskPtr>,
    /// Machines finished with the current epoch's task.
    done: usize,
    shutdown: bool,
    /// First panic message captured from a machine thread this round.
    panic_msg: Option<String>,
}

struct Shared {
    state: TrackedMutex<PoolState>,
    cv: TrackedCondvar,
    machines: usize,
}

/// One OS thread per simulated machine, reused across rounds.
pub struct MachinePool {
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl MachinePool {
    /// Spawns one worker thread per machine. Threads park immediately
    /// and cost nothing until the first [`Self::run_round`].
    pub fn spawn(machines: usize) -> Self {
        let shared = Arc::new(Shared {
            state: TrackedMutex::new(
                "net.pool.state",
                PoolState {
                    epoch: 0,
                    task: None,
                    done: 0,
                    shutdown: false,
                    panic_msg: None,
                },
            ),
            cv: TrackedCondvar::new("net.pool.cv"),
            machines,
        });
        let threads = (0..machines)
            .map(|m| {
                let shared = Arc::clone(&shared);
                // The executor's single audited spawn point: one thread per
                // simulated machine, parked between rounds, joined in Drop.
                // analyze:allow(stray-spawn): the threaded executor's one sanctioned nursery
                thread::Builder::new()
                    .name(format!("mpc-machine-{m}"))
                    .spawn(move || worker(m, &shared))
                    // analyze:allow(panic-path): construction-time spawn — an executor that cannot start is fatal by design
                    .expect("spawn machine thread")
            })
            .collect();
        MachinePool { shared, threads }
    }

    /// Number of machine threads.
    pub fn machines(&self) -> usize {
        self.shared.machines
    }

    /// Executes `task(m)` once on every machine thread and returns when
    /// all have finished — one synchronous round. If any machine thread
    /// panicked, the first captured panic is re-raised here.
    pub fn run_round(&self, task: &(dyn Fn(usize) + Sync)) {
        if self.shared.machines == 0 {
            return;
        }
        // SAFETY: erasing the borrow's lifetime is sound because this
        // function does not return until `done == machines` — every
        // dereference happens while the borrow is still live — and the
        // slot is cleared below before the borrow ends.
        let erased = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(task)
        });
        let mut s = self.shared.state.lock();
        s.epoch += 1;
        s.task = Some(erased);
        s.done = 0;
        s.panic_msg = None;
        self.shared.cv.notify_all();
        while s.done < self.shared.machines {
            s = self.shared.cv.wait(s);
        }
        s.task = None;
        let panicked = s.panic_msg.take();
        drop(s);
        if let Some(msg) = panicked {
            // analyze:allow(panic-path): deliberate re-raise — surfaces a captured machine-thread panic to the coordinator
            panic!("machine thread panicked during round: {msg}");
        }
    }
}

impl fmt::Debug for MachinePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MachinePool")
            .field("machines", &self.shared.machines)
            .finish()
    }
}

impl Drop for MachinePool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.state.lock();
            s.shutdown = true;
            self.shared.cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Machine thread `m`'s park/run loop: wait for a new epoch, run its
/// task (panics captured, never crossing the pool), report done.
fn worker(m: usize, shared: &Shared) {
    let mut seen_epoch = 0u64;
    let mut s = shared.state.lock();
    loop {
        if s.shutdown {
            return;
        }
        if s.epoch != seen_epoch {
            seen_epoch = s.epoch;
            // analyze:allow(panic-path): the coordinator publishes the task before bumping the epoch under this same mutex
            let task = s.task.expect("task published with its epoch");
            drop(s);
            // SAFETY: the coordinator keeps the task borrow alive until
            // every machine reports done for this epoch; ours is below.
            let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*task.0)(m) }));
            s = shared.state.lock();
            if let Err(payload) = result {
                let msg = panic_message(payload.as_ref());
                s.panic_msg.get_or_insert(msg);
            }
            s.done += 1;
            if s.done == shared.machines {
                shared.cv.notify_all();
            }
        } else {
            s = shared.cv.wait(s);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        String::from("<non-string panic>")
    }
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// A reusable sense-reversing barrier: all parties must arrive before
/// any proceeds. The exchange interposes it between "everyone posted"
/// and "anyone collects" — the round's rendezvous point.
pub struct RoundBarrier {
    parties: usize,
    state: TrackedMutex<BarrierState>,
    cv: TrackedCondvar,
}

impl RoundBarrier {
    /// A barrier for `parties` threads (at least one).
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        RoundBarrier {
            parties,
            state: TrackedMutex::new(
                "net.barrier.state",
                BarrierState {
                    arrived: 0,
                    generation: 0,
                    poisoned: false,
                },
            ),
            cv: TrackedCondvar::new("net.barrier.cv"),
        }
    }

    /// Number of parties the barrier synchronises.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks until all parties have arrived; the last arriver releases
    /// the generation. Panics if the barrier was [`Self::poison`]ed (a
    /// peer died mid-round and can never arrive).
    pub fn arrive_and_wait(&self) {
        let mut s = self.state.lock();
        if s.poisoned {
            // analyze:allow(panic-path): deliberate fail-fast — a poisoned barrier means a peer died and will never arrive
            panic!("round barrier poisoned: a peer panicked mid-round");
        }
        s.arrived += 1;
        if s.arrived == self.parties {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        let gen = s.generation;
        while s.generation == gen {
            s = self.cv.wait(s);
            if s.poisoned {
                // analyze:allow(panic-path): deliberate fail-fast — a poisoned barrier means a peer died and will never arrive
                panic!("round barrier poisoned: a peer panicked mid-round");
            }
        }
    }

    /// Marks the barrier dead and wakes all waiters, which panic instead
    /// of waiting forever for a party that will never arrive.
    pub fn poison(&self) {
        let mut s = self.state.lock();
        s.poisoned = true;
        self.cv.notify_all();
    }
}

impl fmt::Debug for RoundBarrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoundBarrier")
            .field("parties", &self.parties)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_round_visits_every_machine_every_round() {
        let pool = MachinePool::spawn(5);
        let hits = AtomicUsize::new(0);
        for round in 1..=4 {
            pool.run_round(&|_m| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 5 * round);
        }
    }

    #[test]
    fn run_round_passes_distinct_machine_indices() {
        let pool = MachinePool::spawn(8);
        let mask = AtomicUsize::new(0);
        pool.run_round(&|m| {
            mask.fetch_or(1 << m, Ordering::SeqCst);
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0xFF);
    }

    #[test]
    fn machine_panic_surfaces_at_the_coordinator() {
        let pool = MachinePool::spawn(3);
        let err = std::thread::spawn(move || {
            pool.run_round(&|m| {
                if m == 1 {
                    panic!("machine 1 exploded");
                }
            });
        })
        .join()
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("machine 1 exploded"), "got: {msg}");
    }

    #[test]
    fn pool_survives_a_panicked_round() {
        let pool = Arc::new(MachinePool::spawn(2));
        let pool2 = Arc::clone(&pool);
        std::thread::spawn(move || {
            pool2.run_round(&|_| panic!("boom"));
        })
        .join()
        .expect_err("panic propagates");
        // The next round still runs on every machine.
        let hits = AtomicUsize::new(0);
        pool.run_round(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn barrier_separates_rounds() {
        let pool = MachinePool::spawn(4);
        let barrier = RoundBarrier::new(4);
        let before = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        pool.run_round(&|_m| {
            before.fetch_add(1, Ordering::SeqCst);
            barrier.arrive_and_wait();
            // After the barrier, every party must have passed "before".
            if before.load(Ordering::SeqCst) != 4 {
                violations.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let pool = MachinePool::spawn(3);
        let barrier = RoundBarrier::new(3);
        let counter = AtomicUsize::new(0);
        pool.run_round(&|_m| {
            for step in 1..=5 {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier.arrive_and_wait();
                assert!(counter.load(Ordering::SeqCst) >= 3 * step);
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 15);
        assert_eq!(barrier.parties(), 3);
    }

    #[test]
    fn poisoned_barrier_panics_instead_of_hanging() {
        let pool = MachinePool::spawn(2);
        let barrier = Arc::new(RoundBarrier::new(3));
        let b = Arc::clone(&barrier);
        barrier.poison();
        let err = std::thread::spawn(move || b.arrive_and_wait())
            .join()
            .expect_err("poisoned barrier must panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("poisoned"), "got: {msg}");
        drop(pool);
    }
}
