//! Per-source message slots the machines exchange batches through.

use spanner_sync::TrackedMutex;

/// A one-round message switchboard: machine `src` posts its per-
/// destination batches into its own slot, and after the round barrier
/// each destination collects its column — in source order, so delivery
/// order is deterministic regardless of thread scheduling.
#[derive(Debug)]
pub struct Router<T> {
    /// `slots[src][dst]` holds what `src` addressed to `dst`.
    slots: Vec<TrackedMutex<Vec<Vec<T>>>>,
}

impl<T> Router<T> {
    /// An empty router for `machines` machines.
    pub fn new(machines: usize) -> Self {
        Router {
            slots: (0..machines)
                .map(|_| {
                    TrackedMutex::new(
                        "net.router.slot",
                        (0..machines).map(|_| Vec::new()).collect(),
                    )
                })
                .collect(),
        }
    }

    /// Number of machines the router connects.
    pub fn machines(&self) -> usize {
        self.slots.len()
    }

    /// Machine `src` publishes its outgoing batches, one `Vec` per
    /// destination (length must equal the machine count).
    pub fn post(&self, src: usize, per_dst: Vec<Vec<T>>) {
        assert_eq!(
            per_dst.len(),
            self.slots.len(),
            "post() needs one batch per destination"
        );
        // analyze:allow(panic-path): `src < machines` by the exchange contract — one slot per machine
        *self.slots[src].lock() = per_dst;
    }

    /// Machine `dst` drains everything addressed to it, ordered by
    /// source index. Must only be called after all sources posted (the
    /// exchange's barrier guarantees this).
    pub fn collect(&self, dst: usize) -> Vec<Vec<T>> {
        self.slots
            .iter()
            // analyze:allow(panic-path): `dst < machines`, and post() asserts every batch has one entry per machine
            .map(|slot| std::mem::take(&mut slot.lock()[dst]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_ordered_by_source() {
        let router = Router::new(3);
        // Post out of source order on purpose.
        router.post(2, vec![vec![20], vec![], vec![22]]);
        router.post(0, vec![vec![0], vec![1], vec![2]]);
        router.post(1, vec![vec![10], vec![11], vec![]]);
        assert_eq!(router.collect(0), vec![vec![0], vec![10], vec![20]]);
        assert_eq!(router.collect(1), vec![vec![1], vec![11], vec![]]);
        assert_eq!(router.collect(2), vec![vec![2], vec![], vec![22]]);
    }

    #[test]
    fn collect_drains_the_column() {
        let router = Router::new(2);
        router.post(0, vec![vec![7], vec![8]]);
        router.post(1, vec![vec![], vec![]]);
        assert_eq!(router.collect(1), vec![vec![8], vec![]]);
        assert_eq!(router.collect(1), vec![Vec::<i32>::new(), vec![]]);
    }
}
