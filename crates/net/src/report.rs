//! The simulated-clock report a threaded run accumulates.

/// Per-run network accounting under a [`crate::NetworkModel`]: wire
/// traffic per machine, simulated time per round, and the total
/// predicted wall-clock.
///
/// Per-machine byte counts are *wire-measured* by the router exchanges
/// (self-delivery is free, matching the model); round times are charged
/// from the runtime's per-round accounting, so synthetic rounds (e.g.
/// the sample-sort splitter trees) are priced even though they move no
/// router traffic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetReport {
    /// Number of simulated machines.
    pub machines: usize,
    /// Rounds priced so far.
    pub rounds: u64,
    /// Bytes each machine put on the wire (self-delivery excluded).
    pub sent_bytes: Vec<u64>,
    /// Bytes each machine received off the wire.
    pub recv_bytes: Vec<u64>,
    /// Simulated seconds charged to each round, in execution order.
    pub round_times: Vec<f64>,
    /// Total predicted wall-clock (the sum of `round_times`).
    pub total_seconds: f64,
}

impl NetReport {
    /// An empty report for `machines` machines.
    pub fn new(machines: usize) -> Self {
        NetReport {
            machines,
            rounds: 0,
            sent_bytes: vec![0; machines],
            recv_bytes: vec![0; machines],
            round_times: Vec::new(),
            total_seconds: 0.0,
        }
    }

    /// Prices one executed round at `cost` simulated seconds.
    pub fn observe_round(&mut self, cost: f64) {
        self.rounds += 1;
        self.round_times.push(cost);
        self.total_seconds += cost;
    }

    /// Folds one exchange's per-machine traffic (in words) into the
    /// wire counters.
    pub fn add_traffic_words(&mut self, sent_words: &[u64], recv_words: &[u64]) {
        for (acc, &w) in self.sent_bytes.iter_mut().zip(sent_words) {
            *acc += w * crate::WORD_BYTES;
        }
        for (acc, &w) in self.recv_bytes.iter_mut().zip(recv_words) {
            *acc += w * crate::WORD_BYTES;
        }
    }

    /// The busiest sender's total bytes.
    pub fn max_sent_bytes(&self) -> u64 {
        self.sent_bytes.iter().copied().max().unwrap_or(0)
    }

    /// The busiest receiver's total bytes.
    pub fn max_recv_bytes(&self) -> u64 {
        self.recv_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Index and simulated cost of the most expensive round, if any.
    pub fn critical_round(&self) -> Option<(usize, f64)> {
        self.round_times
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Folds another report (e.g. the APSP gather phase) into this one:
    /// rounds append, traffic and time add.
    pub fn absorb(&mut self, other: &NetReport) {
        if self.machines < other.machines {
            self.machines = other.machines;
            self.sent_bytes.resize(other.machines, 0);
            self.recv_bytes.resize(other.machines, 0);
        }
        self.rounds += other.rounds;
        for (acc, &b) in self.sent_bytes.iter_mut().zip(&other.sent_bytes) {
            *acc += b;
        }
        for (acc, &b) in self.recv_bytes.iter_mut().zip(&other.recv_bytes) {
            *acc += b;
        }
        self.round_times.extend_from_slice(&other.round_times);
        self.total_seconds += other.total_seconds;
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "predicted={:.4}s over {} rounds | wire: max_sent={}B max_recv={}B",
            self.total_seconds,
            self.rounds,
            self.max_sent_bytes(),
            self.max_recv_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_and_time_accumulate() {
        let mut r = NetReport::new(3);
        r.observe_round(0.5);
        r.observe_round(1.25);
        assert_eq!(r.rounds, 2);
        assert_eq!(r.round_times, vec![0.5, 1.25]);
        assert_eq!(r.total_seconds, 1.75);
        assert_eq!(r.critical_round(), Some((1, 1.25)));
    }

    #[test]
    fn traffic_converts_words_to_bytes() {
        let mut r = NetReport::new(2);
        r.add_traffic_words(&[3, 0], &[0, 3]);
        r.add_traffic_words(&[1, 1], &[1, 1]);
        assert_eq!(r.sent_bytes, vec![32, 8]);
        assert_eq!(r.recv_bytes, vec![8, 32]);
        assert_eq!(r.max_sent_bytes(), 32);
        assert_eq!(r.max_recv_bytes(), 32);
    }

    #[test]
    fn absorb_merges_everything() {
        let mut a = NetReport::new(2);
        a.observe_round(1.0);
        a.add_traffic_words(&[2, 0], &[0, 2]);
        let mut b = NetReport::new(2);
        b.observe_round(0.5);
        b.add_traffic_words(&[0, 4], &[4, 0]);
        a.absorb(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.total_seconds, 1.5);
        assert_eq!(a.sent_bytes, vec![16, 32]);
        assert_eq!(a.recv_bytes, vec![32, 16]);
        assert!(a.summary().contains("2 rounds"));
    }
}
