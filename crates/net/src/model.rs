//! Pluggable network cost models.
//!
//! The MPC model counts *rounds*; a cost model converts each executed
//! round into simulated seconds so competing algorithms (round-frugal
//! vs bandwidth-frugal) can be ranked on a concrete cluster shape. The
//! charge is the classic latency/bandwidth form: a round costs its
//! fixed latency plus the bytes crossing the most loaded link divided
//! by the link bandwidth.
//!
//! Models never read the host clock — the simulated time is a pure
//! function of the traffic the runtime measured.

/// Bytes per machine word (the runtime accounts traffic in 64-bit words).
pub const WORD_BYTES: u64 = 8;

/// A network shape that prices one synchronous round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetworkModel {
    /// Zero-cost network. Rounds are free — useful for pinning the
    /// threaded executor against the loop executor without a clock.
    Ideal,
    /// Every machine pair has a private link: a round costs the fixed
    /// latency plus the busiest endpoint's bytes over its link speed.
    FullMesh {
        /// Per-round fixed latency, in seconds.
        latency_s: f64,
        /// Per-machine link bandwidth, in bytes per second.
        bytes_per_sec: f64,
    },
    /// A switched fabric limited by its bisection: a round costs the
    /// round's total bytes over the bisection bandwidth.
    Switched {
        /// Bisection bandwidth, in bytes per second.
        bisection_bytes_per_sec: f64,
    },
}

impl NetworkModel {
    /// Simulated cost of one round, given the busiest sender's bytes,
    /// the busiest receiver's bytes, and the round's total bytes.
    pub fn round_cost(&self, max_sent_bytes: u64, max_recv_bytes: u64, total_bytes: u64) -> f64 {
        match *self {
            NetworkModel::Ideal => 0.0,
            NetworkModel::FullMesh {
                latency_s,
                bytes_per_sec,
            } => {
                let critical = max_sent_bytes.max(max_recv_bytes) as f64;
                // analyze:allow(panic-path): f64 operands — float division cannot trap
                latency_s + critical / bytes_per_sec
            }
            NetworkModel::Switched {
                bisection_bytes_per_sec,
            } => total_bytes as f64 / bisection_bytes_per_sec,
        }
    }

    /// Closed-form prediction from aggregate metrics: `rounds` rounds
    /// whose summed per-round critical-link bytes are
    /// `critical_link_bytes` and whose summed traffic is `total_bytes`.
    /// Equals the sum of [`Self::round_cost`] over the rounds (the
    /// per-round maxima distribute over the sum), so loop-executor
    /// metrics yield the same prediction the threaded executor clocks.
    pub fn predict(&self, rounds: u64, critical_link_bytes: u64, total_bytes: u64) -> f64 {
        match *self {
            NetworkModel::Ideal => 0.0,
            NetworkModel::FullMesh {
                latency_s,
                bytes_per_sec,
            } => rounds as f64 * latency_s + critical_link_bytes as f64 / bytes_per_sec,
            NetworkModel::Switched {
                bisection_bytes_per_sec,
            } => total_bytes as f64 / bisection_bytes_per_sec,
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match *self {
            NetworkModel::Ideal => "ideal".into(),
            NetworkModel::FullMesh {
                latency_s,
                bytes_per_sec,
            } => format!(
                "mesh({:.0}us,{:.1}GB/s)",
                latency_s * 1e6,
                bytes_per_sec / 1e9
            ),
            NetworkModel::Switched {
                bisection_bytes_per_sec,
            } => format!("switch({:.1}GB/s)", bisection_bytes_per_sec / 1e9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(latency_s: f64, bytes_per_sec: f64) -> NetworkModel {
        NetworkModel::FullMesh {
            latency_s,
            bytes_per_sec,
        }
    }

    #[test]
    fn ideal_is_free() {
        assert_eq!(
            NetworkModel::Ideal.round_cost(1 << 20, 1 << 20, 1 << 30),
            0.0
        );
        assert_eq!(NetworkModel::Ideal.predict(1000, 1 << 30, 1 << 40), 0.0);
    }

    #[test]
    fn full_mesh_cost_is_monotone_in_latency() {
        let lo = mesh(1e-4, 1e9).round_cost(4096, 8192, 65536);
        let hi = mesh(1e-3, 1e9).round_cost(4096, 8192, 65536);
        assert!(hi > lo, "higher latency must cost more: {hi} vs {lo}");
        let plo = mesh(1e-4, 1e9).predict(50, 1 << 20, 1 << 24);
        let phi = mesh(1e-3, 1e9).predict(50, 1 << 20, 1 << 24);
        assert!(phi > plo, "predicted time must grow with latency");
    }

    #[test]
    fn full_mesh_cost_is_inversely_monotone_in_bandwidth() {
        let slow = mesh(1e-4, 1e8).round_cost(4096, 8192, 65536);
        let fast = mesh(1e-4, 1e10).round_cost(4096, 8192, 65536);
        assert!(
            slow > fast,
            "more bandwidth must cost less: {slow} vs {fast}"
        );
        let pslow = mesh(1e-4, 1e8).predict(50, 1 << 20, 1 << 24);
        let pfast = mesh(1e-4, 1e10).predict(50, 1 << 20, 1 << 24);
        assert!(pslow > pfast, "predicted time must shrink with bandwidth");
    }

    #[test]
    fn full_mesh_charges_the_busier_direction() {
        let m = mesh(0.0, 1.0);
        assert_eq!(m.round_cost(10, 4, 100), 10.0);
        assert_eq!(m.round_cost(4, 10, 100), 10.0);
    }

    #[test]
    fn switched_charges_total_over_bisection() {
        let m = NetworkModel::Switched {
            bisection_bytes_per_sec: 100.0,
        };
        assert_eq!(m.round_cost(1, 1, 250), 2.5);
        assert_eq!(m.predict(7, 0, 1000), 10.0);
    }

    #[test]
    fn predict_matches_summed_round_costs() {
        // Two rounds with distinct traffic shapes; predict() from the
        // aggregated quantities must equal the per-round sum.
        let m = mesh(2e-3, 1e6);
        let rounds = [(1000u64, 400u64, 5000u64), (300, 2000, 7000)];
        let summed: f64 = rounds.iter().map(|&(s, r, t)| m.round_cost(s, r, t)).sum();
        let critical: u64 = rounds.iter().map(|&(s, r, _)| s.max(r)).sum();
        let total: u64 = rounds.iter().map(|&(_, _, t)| t).sum();
        let predicted = m.predict(rounds.len() as u64, critical, total);
        assert!(
            (summed - predicted).abs() < 1e-12,
            "{summed} vs {predicted}"
        );
    }
}
