//! `spanner-net`: a thread-per-machine execution substrate for the MPC
//! runtime, with pluggable network cost models.
//!
//! The loop executor in `mpc-runtime` simulates machines as a data-
//! parallel loop and counts abstract rounds. This crate supplies the
//! physical alternative: a [`MachinePool`] runs one OS thread per
//! simulated machine, each round's messages travel through a [`Router`]
//! with a [`RoundBarrier`] rendezvous ([`fn@exchange`]), and a
//! [`NetworkModel`] prices every round in simulated seconds, which a
//! [`NetReport`] accumulates into a predicted cluster wall-clock.
//!
//! Delivery order from [`fn@exchange`] is `(source, position)` — exactly
//! the loop executor's order — so the two executors produce
//! bit-identical shards, rounds, and traffic at fixed seeds. All
//! synchronisation uses `spanner-sync` tracked primitives; enable the
//! `lock-audit` feature to check the executor's lock discipline.

pub mod exchange;
pub mod model;
pub mod pool;
pub mod report;
pub mod router;

pub use exchange::exchange;
pub use model::{NetworkModel, WORD_BYTES};
pub use pool::{MachinePool, RoundBarrier};
pub use report::NetReport;
pub use router::Router;
