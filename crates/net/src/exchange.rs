//! One synchronous all-to-all exchange over the machine pool.

use std::panic::{self, AssertUnwindSafe};

use spanner_sync::TrackedMutex;

use crate::pool::{MachinePool, RoundBarrier};
use crate::router::Router;

/// A machine's pending outbox, taken exactly once by its worker.
type OutboxSlot<T> = TrackedMutex<Option<Vec<(usize, T)>>>;
/// A machine's result: (inbound shard, sent wire words, received wire words).
type OutcomeSlot<T> = TrackedMutex<Option<(Vec<T>, u64, u64)>>;

/// Runs one physical all-to-all round on the pool: machine `m` takes
/// `outboxes[m]` (a list of `(dst, record)` pairs), posts it through a
/// fresh [`Router`], rendezvouses at a [`RoundBarrier`], then collects
/// its inbound shard in source order.
///
/// Returns `(shards, sent_words, recv_words)` where `shards[m]` holds
/// machine `m`'s inbound records ordered by `(src, position)` — exactly
/// the loop executor's delivery order — and the word vectors count wire
/// traffic per machine (self-delivery is free, as in the MPC model).
pub fn exchange<T: Send + Sync>(
    pool: &MachinePool,
    words_per_record: usize,
    outboxes: Vec<Vec<(usize, T)>>,
) -> (Vec<Vec<T>>, Vec<u64>, Vec<u64>) {
    let p = pool.machines();
    assert_eq!(outboxes.len(), p, "one outbox per machine");
    if p == 0 {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    let w = words_per_record as u64;

    let router: Router<T> = Router::new(p);
    let barrier = RoundBarrier::new(p);
    let inbox: Vec<OutboxSlot<T>> = outboxes
        .into_iter()
        .map(|o| TrackedMutex::new("net.exchange.inbox", Some(o)))
        .collect();
    let outcome: Vec<OutcomeSlot<T>> = (0..p)
        .map(|_| TrackedMutex::new("net.exchange.outcome", None))
        .collect();

    pool.run_round(&|m| {
        // If this machine's half-round panics, poison the barrier so
        // its peers fail fast instead of waiting on it forever.
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            // analyze:allow(panic-path): `m < p` from the pool; each outbox is taken exactly once per round
            let mine = inbox[m].lock().take().expect("outbox taken once");
            let mut per_dst: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
            let mut sent = 0u64;
            for (dst, rec) in mine {
                if dst != m {
                    sent += w;
                }
                // analyze:allow(panic-path): an out-of-range destination panics this machine, is caught below, and poisons the barrier — fail fast over wedging peers
                per_dst[dst].push(rec);
            }
            router.post(m, per_dst);
            barrier.arrive_and_wait();
            let parts = router.collect(m);
            let mut recv = 0u64;
            let mut shard = Vec::new();
            for (src, part) in parts.into_iter().enumerate() {
                if src != m {
                    recv += part.len() as u64 * w;
                }
                shard.extend(part);
            }
            // analyze:allow(panic-path): `m < p` from the pool — one outcome slot per machine
            *outcome[m].lock() = Some((shard, sent, recv));
        }));
        if let Err(payload) = result {
            barrier.poison();
            panic::resume_unwind(payload);
        }
    });

    let mut shards = Vec::with_capacity(p);
    let mut sent_words = Vec::with_capacity(p);
    let mut recv_words = Vec::with_capacity(p);
    for slot in &outcome {
        let (shard, sent, recv) = slot
            .lock()
            .take()
            // analyze:allow(panic-path): run_round returned, so every machine completed its round (or re-raised)
            .expect("every machine stored its outcome");
        shards.push(shard);
        sent_words.push(sent);
        recv_words.push(recv);
    }
    (shards, sent_words, recv_words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_matches_src_pos_order() {
        let pool = MachinePool::spawn(3);
        // Machine 0 scatters, machine 2 sends to 0 and itself.
        let outboxes = vec![
            vec![(0usize, 'a'), (1, 'b'), (2, 'c'), (1, 'd')],
            vec![(2, 'e')],
            vec![(0, 'f'), (2, 'g')],
        ];
        let (shards, sent, recv) = exchange(&pool, 2, outboxes);
        assert_eq!(shards[0], vec!['a', 'f']);
        assert_eq!(shards[1], vec!['b', 'd']);
        assert_eq!(shards[2], vec!['c', 'e', 'g']);
        // Self-delivery ('a' and 'g') is free on the wire.
        assert_eq!(sent, vec![6, 2, 2]);
        assert_eq!(recv, vec![2, 4, 4]);
    }

    #[test]
    fn empty_traffic_is_fine() {
        let pool = MachinePool::spawn(2);
        let (shards, sent, recv) = exchange::<u32>(&pool, 1, vec![vec![], vec![]]);
        assert_eq!(shards, vec![Vec::<u32>::new(), Vec::new()]);
        assert_eq!(sent, vec![0, 0]);
        assert_eq!(recv, vec![0, 0]);
    }

    #[test]
    fn repeated_exchanges_reuse_the_pool() {
        let pool = MachinePool::spawn(4);
        for round in 0..5u32 {
            // Everyone sends `round` to machine (m+1) % 4.
            let outboxes = (0..4).map(|m| vec![((m + 1) % 4, (round, m))]).collect();
            let (shards, sent, recv) = exchange(&pool, 3, outboxes);
            for m in 0..4usize {
                assert_eq!(shards[m], vec![(round, (m + 3) % 4)]);
                assert_eq!(sent[m], 3);
                assert_eq!(recv[m], 3);
            }
        }
    }

    #[test]
    fn panicking_machine_poisons_instead_of_hanging() {
        let pool = MachinePool::spawn(3);
        let err = std::thread::spawn(move || {
            let outboxes = vec![vec![(0usize, 1u8)], vec![], vec![]];
            // Run an exchange whose machine 1 dies before the barrier by
            // feeding an impossible destination assertion via post().
            pool.run_round(&|m| {
                if m == 1 {
                    panic!("machine 1 died before the rendezvous");
                }
            });
            drop(outboxes);
        })
        .join()
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("machine 1 died"), "got: {msg}");
    }
}
