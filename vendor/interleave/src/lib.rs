//! `interleave` — a vendored "loom-lite" for deterministic exploration of
//! thread interleavings.
//!
//! The real [loom](https://github.com/tokio-rs/loom) crate is unavailable in
//! this environment (no registry access), so this module implements the small
//! subset the workspace needs: run a multi-threaded *scenario* under a
//! cooperative scheduler that serialises all managed threads and, at every
//! [`yield_point`], picks the next runnable thread with a **seeded** RNG.
//! Running the same scenario with the same seed replays the exact same
//! schedule; running it across a few hundred seeds explores a few hundred
//! distinct schedules reproducibly.
//!
//! # Model
//!
//! * [`run_one`] executes one scenario under one seed and returns the
//!   [`Trace`] of scheduling decisions. The closure receives a [`Sim`] handle
//!   used to spawn *managed* threads.
//! * Managed threads are real OS threads, but only one is ever runnable at a
//!   time: a token (the `current` index) is handed from thread to thread at
//!   yield points, so execution is fully serialised and the trace alone
//!   determines the interleaving.
//! * [`yield_point`] is a no-op outside a simulation, so instrumented code
//!   (e.g. `spanner-sync` tracked locks) can call it unconditionally.
//! * Panics inside any managed thread are caught, the failing **seed is
//!   printed**, and the panic is re-raised from `run_one` so the schedule can
//!   be replayed with `run_one(seed, ..)`.
//!
//! Blocking primitives must not be used directly by managed threads (a
//! blocked OS thread would stall the token). Instrumented locks spin with
//! `try_lock` + [`yield_point`] instead while a simulation is active — see
//! `spanner-sync`.
//!
//! # Example
//!
//! ```
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use std::sync::Arc;
//!
//! let counter = Arc::new(AtomicU32::new(0));
//! let trace = interleave::run_one(42, |sim| {
//!     for _ in 0..2 {
//!         let counter = Arc::clone(&counter);
//!         sim.spawn(move || {
//!             let v = counter.load(Ordering::SeqCst);
//!             interleave::yield_point();
//!             counter.store(v + 1, Ordering::SeqCst);
//!         });
//!     }
//!     sim.join_all();
//! });
//! // With a non-atomic read-modify-write, some seeds lose an increment —
//! // that's exactly the class of bug the explorer exists to surface.
//! assert_eq!(trace, interleave::run_one(42, |sim| {
//!     for _ in 0..2 {
//!         let counter = Arc::clone(&counter);
//!         sim.spawn(move || {
//!             let v = counter.load(Ordering::SeqCst);
//!             interleave::yield_point();
//!             counter.store(v + 1, Ordering::SeqCst);
//!         });
//!     }
//!     sim.join_all();
//! }));
//! ```

use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The sequence of scheduling decisions made during one simulated run.
///
/// Each element is the index of the managed thread handed the execution token
/// (0 is the scenario/root thread). Two runs with the same seed produce equal
/// traces; a trace therefore identifies a schedule for reproduction purposes.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Trace {
    /// Thread indices in the order they were scheduled.
    pub decisions: Vec<u32>,
}

struct SimState {
    rng: u64,
    /// Thread currently holding the execution token, if any.
    current: Option<u32>,
    /// Threads that are alive and eligible to be scheduled.
    runnable: Vec<u32>,
    trace: Vec<u32>,
    /// Total managed threads registered, including the root (index 0).
    registered: u32,
    finished: u32,
    /// First panic observed in any managed thread, as a display string.
    panic: Option<String>,
}

struct SimShared {
    state: Mutex<SimState>,
    turn: Condvar,
}

thread_local! {
    /// (shared sim, this thread's managed index) — set while a thread is
    /// participating in a simulation.
    static ACTIVE: RefCell<Option<(Arc<SimShared>, u32)>> = const { RefCell::new(None) };
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

impl SimState {
    /// Pick the next thread to run among `runnable`, preferring not to pick
    /// `exclude` (the yielding thread) unless it is the only one left.
    fn pick_next(&mut self, exclude: Option<u32>) -> Option<u32> {
        let mut candidates: Vec<u32> = self
            .runnable
            .iter()
            .copied()
            .filter(|&t| Some(t) != exclude)
            .collect();
        if candidates.is_empty() {
            candidates.clone_from(&self.runnable);
        }
        if candidates.is_empty() {
            return None;
        }
        self.rng = xorshift(self.rng);
        Some(candidates[(self.rng % candidates.len() as u64) as usize])
    }
}

impl SimShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
        // Tolerate poisoning: a panicking managed thread must not wedge the
        // scheduler, which still has to hand the token onward and report the
        // failing seed.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Hand the token to a randomly chosen runnable thread and wait for it to
    /// come back to `me`.
    fn yield_now(&self, me: u32) {
        let mut st = self.lock();
        match st.pick_next(Some(me)) {
            Some(next) if next != me => {
                st.trace.push(next);
                st.current = Some(next);
                self.turn.notify_all();
                while st.current != Some(me) {
                    st = self.turn.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
            _ => {}
        }
    }

    /// Block until this thread is handed the token for the first time.
    fn wait_for_turn(&self, me: u32) {
        let mut st = self.lock();
        while st.current != Some(me) {
            st = self.turn.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Mark `me` finished, record any panic, and hand the token onward.
    fn finish(&self, me: u32, panicked: Option<String>) {
        let mut st = self.lock();
        st.runnable.retain(|&t| t != me);
        st.finished += 1;
        if let Some(msg) = panicked {
            if st.panic.is_none() {
                st.panic = Some(msg);
            }
        }
        let next = st.pick_next(None);
        st.current = next;
        if let Some(n) = next {
            st.trace.push(n);
        }
        self.turn.notify_all();
    }
}

fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Handle given to a scenario for spawning managed threads.
pub struct Sim {
    shared: Arc<SimShared>,
    handles: RefCell<Vec<JoinHandle<()>>>,
}

impl Sim {
    /// Spawn a managed thread. It participates in the cooperative schedule:
    /// it starts only when the scheduler hands it the token, and every
    /// [`yield_point`] it reaches is a potential preemption.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let index = {
            let mut st = self.shared.lock();
            let index = st.registered;
            st.registered += 1;
            st.runnable.push(index);
            index
        };
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("interleave-{index}"))
            .spawn(move || {
                ACTIVE.with(|a| *a.borrow_mut() = Some((Arc::clone(&shared), index)));
                shared.wait_for_turn(index);
                let result = panic::catch_unwind(AssertUnwindSafe(f));
                ACTIVE.with(|a| *a.borrow_mut() = None);
                shared.finish(index, result.err().map(payload_to_string));
            })
            .expect("interleave: failed to spawn managed thread");
        self.handles.borrow_mut().push(handle);
    }

    /// Yield the root thread until every spawned thread has finished, then
    /// resume as the sole runner. Call this before asserting on shared state.
    ///
    /// Must only be called from the scenario (root) thread, and not while
    /// holding any instrumented lock (spawned threads could never acquire it).
    pub fn join_all(&self) {
        let me = current_index().expect("join_all called outside the simulation");
        assert_eq!(me, 0, "join_all must be called from the scenario thread");
        let mut st = self.shared.lock();
        st.runnable.retain(|&t| t != me);
        let next = st.pick_next(None);
        st.current = next;
        if let Some(n) = next {
            st.trace.push(n);
            self.shared.turn.notify_all();
        }
        while st.finished + 1 < st.registered {
            st = self.shared.turn.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.runnable.push(me);
        st.current = Some(me);
    }
}

fn current_index() -> Option<u32> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|(_, i)| *i))
}

/// True while the calling thread is a managed thread of an active simulation.
///
/// Instrumented primitives branch on this: inside a simulation they must spin
/// with `try_lock` + [`yield_point`] instead of blocking.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// A potential preemption point. Inside a simulation the scheduler may hand
/// the token to another managed thread here; outside one this is a no-op.
pub fn yield_point() {
    let active = ACTIVE.with(|a| a.borrow().as_ref().map(|(s, i)| (Arc::clone(s), *i)));
    if let Some((shared, me)) = active {
        shared.yield_now(me);
    }
}

/// Run one scenario under one seed and return its [`Trace`].
///
/// The scenario runs on the calling thread as managed thread 0. If any
/// managed thread panics, the panic is re-raised here with the seed in the
/// message so the schedule can be replayed.
pub fn run_one<F>(seed: u64, scenario: F) -> Trace
where
    F: FnOnce(&Sim),
{
    let shared = Arc::new(SimShared {
        state: Mutex::new(SimState {
            rng: splitmix64(seed) | 1,
            current: Some(0),
            runnable: vec![0],
            trace: vec![0],
            registered: 1,
            finished: 0,
            panic: None,
        }),
        turn: Condvar::new(),
    });
    let sim = Sim {
        shared: Arc::clone(&shared),
        handles: RefCell::new(Vec::new()),
    };
    ACTIVE.with(|a| *a.borrow_mut() = Some((Arc::clone(&shared), 0)));
    let result = panic::catch_unwind(AssertUnwindSafe(|| scenario(&sim)));
    ACTIVE.with(|a| *a.borrow_mut() = None);
    shared.finish(0, result.err().map(payload_to_string));

    // Wait for every spawned thread to drain, then join the OS handles.
    {
        let mut st = shared.lock();
        while st.finished < st.registered {
            st = shared.turn.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    for handle in sim.handles.into_inner() {
        let _ = handle.join();
    }

    let st = shared.lock();
    if let Some(msg) = &st.panic {
        panic!("interleave: scenario failed under seed {seed} — replay with run_one({seed}, ..): {msg}");
    }
    Trace {
        decisions: st.trace.clone(),
    }
}

/// Outcome of an [`Explorer`] sweep.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Number of seeded schedules executed.
    pub schedules: usize,
    /// Number of distinct [`Trace`]s observed across those schedules.
    pub distinct_traces: usize,
}

/// Sweeps a scenario across many seeded schedules.
///
/// Seeds are `base_seed..base_seed + schedules`; each is run with
/// [`run_one`], so any failure reports the seed that triggered it.
pub struct Explorer {
    schedules: usize,
    base_seed: u64,
}

impl Explorer {
    /// An explorer that will run `schedules` seeds starting from 0.
    pub fn new(schedules: usize) -> Self {
        Explorer {
            schedules,
            base_seed: 0,
        }
    }

    /// Start the seed sweep at `seed` instead of 0.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Run the scenario under every seed; panics (with the seed) on the first
    /// failing schedule.
    pub fn explore<F>(&self, scenario: F) -> Summary
    where
        F: Fn(&Sim),
    {
        let mut traces = HashSet::new();
        for i in 0..self.schedules {
            let seed = self.base_seed.wrapping_add(i as u64);
            let trace = run_one(seed, &scenario);
            traces.insert(trace);
        }
        Summary {
            schedules: self.schedules,
            distinct_traces: traces.len(),
        }
    }
}
