//! Dependency-free shim for the subset of [proptest] this workspace
//! uses. The build environment has no registry access, so the real crate
//! cannot be fetched.
//!
//! Supported surface (everything the in-tree property tests call):
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * integer / float range strategies (`0u64..100`, `2usize..24`, …),
//!   tuple strategies up to arity 6, and [`collection::vec()`];
//! * [`Strategy::prop_map`](strategy::Strategy::prop_map) and
//!   [`Strategy::prop_flat_map`](strategy::Strategy::prop_flat_map);
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (reruns are reproducible by construction), and
//! there is **no shrinking** — a failing case reports the case index and
//! the assertion message, not a minimised input.
//!
//! [proptest]: https://docs.rs/proptest

#[doc(hidden)]
pub mod rand_shim {
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, RngCore, SeedableRng};
}

pub mod test_runner {
    //! The execution side: config, case errors, and the per-test driver
    //! invoked by the [`proptest!`](crate::proptest) macro expansion.

    /// How a single generated case failed (or was rejected).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An explicit `prop_assert*` failure with its message.
        Fail(String),
        /// The case was rejected by `prop_assume!`; it is skipped and
        /// does not count as a failure.
        Reject,
    }

    impl TestCaseError {
        /// Construct a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// The `Result` type a generated case body evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Base seed for the deterministic case stream.
        pub seed: u64,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Budget of `prop_assume!` rejections before the run is declared
    /// over-constrained (mirrors the real crate's `max_global_rejects`
    /// default of 4× the case count).
    pub fn max_global_rejects(cases: u32) -> u64 {
        4 * u64::from(cases.max(1))
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Seed chosen once, arbitrarily (pi's hex digits); fixed so
            // failures reproduce across runs and machines.
            ProptestConfig {
                cases: 256,
                seed: 0x243F_6A88_85A3_08D3,
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies, mirroring `proptest::strategy`.
    use crate::rand_shim::{Rng, SeedableRng, StdRng};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value. Deterministic in the state of `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Seed the deterministic runner RNG for one property test.
    pub fn runner_rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.
    use crate::rand_shim::{Rng, StdRng};
    use crate::strategy::Strategy;

    /// The length distribution for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `elem` and
    /// whose length is drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.hi_exclusive <= self.size.lo {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Fail the current case with an assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($lhs), stringify!($rhs), l, r
                    )));
                }
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Fail the current case unless two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($lhs),
                        stringify!($rhs),
                        l
                    )));
                }
            }
        }
    };
}

/// Skip the current case (it counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// block is run for `cases` generated inputs (default 256, override with
/// the `#![proptest_config(...)]` header).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)
     $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::strategy::runner_rng(config.seed);
                // As in the real crate, `prop_assume!` rejections are
                // redrawn rather than consuming the case budget, and an
                // excessive rejection rate is an error instead of a
                // silently weakened test.
                let max_rejects = $crate::test_runner::max_global_rejects(config.cases);
                let mut rejects: u64 = 0;
                let mut case: u32 = 0;
                while case < config.cases {
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {
                            case += 1;
                        }
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejects += 1;
                            if rejects > max_rejects {
                                panic!(
                                    "property test {} rejected too many inputs \
                                     ({} rejections for {} target cases): \
                                     weaken the prop_assume! or tighten the strategy",
                                    stringify!($name), rejects, config.cases
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property test {} failed at case {}/{}: {}",
                                   stringify!($name), case + 1, config.cases, msg);
                        }
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! Drop-in replacement for `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        (0u64..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn mapped_strategies_apply(x in small_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..9).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = pair;
            prop_assert!(i < n, "index {} out of bound {}", i, n);
        }

        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec(0u64..100, 2..7),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    static HEAVY_ASSUME_ACCEPTED: std::sync::atomic::AtomicU32 =
        std::sync::atomic::AtomicU32::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // Not #[test]: driven by `assume_redraws_to_full_budget` below so
        // the accepted-case counter is observed without a parallel runner.
        #[allow(dead_code)]
        fn heavy_assume_driver(x in 0u64..10) {
            prop_assume!(x >= 8); // rejects ~80% of draws
            HEAVY_ASSUME_ACCEPTED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Rejections must be redrawn, not consume the case budget: the body
    /// must run for the full configured number of accepted cases.
    #[test]
    fn assume_redraws_to_full_budget() {
        HEAVY_ASSUME_ACCEPTED.store(0, std::sync::atomic::Ordering::Relaxed);
        heavy_assume_driver();
        assert_eq!(
            HEAVY_ASSUME_ACCEPTED.load(std::sync::atomic::Ordering::Relaxed),
            32
        );
    }
}
