//! The global worker pool behind every parallel operation in this shim.
//!
//! Architecture: a lazily-initialized set of `std::thread` workers blocked
//! on a shared FIFO of *tickets*. A parallel operation packages its chunk
//! tasks into a [`Batch`], enqueues one ticket per task, and then
//! participates itself: the calling thread claims and runs tasks of its own
//! batch until none are left unclaimed, then blocks until the stragglers
//! (tasks claimed by workers) finish. Because a caller always makes
//! progress on its own batch, nested parallel calls (a task that itself
//! fans out) cannot deadlock even when every worker is busy.
//!
//! Pool size: `RAYON_NUM_THREADS` if set to a positive integer, otherwise
//! `std::thread::available_parallelism()` with a floor of 2 so that
//! parallel execution is genuinely exercised even on single-core CI
//! runners. The calling thread counts as one of the pool's threads, so a
//! pool of size `n` spawns `n − 1` workers — and a pool of size 1 spawns
//! none and runs every task inline on the caller, which is the zero-
//! overhead sequential baseline the benchmarks compare against.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;

use spanner_sync::{TrackedCondvar, TrackedMutex};

/// A boxed chunk task: runs once, produces one `R`.
pub(crate) type Task<'scope, R> = Box<dyn FnOnce() -> R + Send + 'scope>;

/// Type-erased handle through which a worker executes one claimed task of
/// some batch without knowing its result type.
trait RunOne: Send + Sync {
    /// Claims the next unclaimed task and runs it. Returns `false` when
    /// every task of the batch has already been claimed.
    fn run_one(&self) -> bool;
}

struct Inner {
    queue: TrackedMutex<VecDeque<Arc<dyn RunOne>>>,
    /// Signalled when tickets are enqueued.
    available: TrackedCondvar,
}

struct Pool {
    inner: Arc<Inner>,
    /// Total pool size, *including* the calling thread.
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn configured_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .max(2),
    }
}

fn global() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let inner = Arc::new(Inner {
            queue: TrackedMutex::new("rayon.queue", VecDeque::new()),
            available: TrackedCondvar::new("rayon.available"),
        });
        for i in 0..threads.saturating_sub(1) {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(&inner))
                .expect("failed to spawn rayon shim worker");
        }
        Pool { inner, threads }
    })
}

fn worker_loop(inner: &Inner) {
    loop {
        let ticket = {
            let mut q = inner.queue.lock();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = inner.available.wait(q);
            }
        };
        // Serve the ticket's batch until it is drained. Task panics are
        // caught inside `run_one` and reported to the submitting thread;
        // they never unwind the worker.
        while ticket.run_one() {}
    }
}

thread_local! {
    /// Per-thread parallelism override installed by
    /// [`crate::ThreadPool::install`]; `None` means "use the global pool
    /// size". Consulted by chunk splitting, so it bounds how many tasks a
    /// parallel operation fans out into.
    static THREAD_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel operations started from this thread will
/// split across (the `install`ed override if any, else the global pool
/// size).
pub fn current_num_threads() -> usize {
    THREAD_CAP
        .with(Cell::get)
        .unwrap_or_else(|| global().threads)
}

/// Runs `f` with [`current_num_threads`] forced to `n`; restores the
/// previous value afterwards (also on panic).
pub(crate) fn with_thread_cap<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_CAP.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// One submitted parallel operation: its tasks, their result slots, and
/// the claim/completion bookkeeping.
struct Batch<'scope, R> {
    tasks: Vec<TrackedMutex<Option<Task<'scope, R>>>>,
    results: Vec<TrackedMutex<Option<thread::Result<R>>>>,
    /// Next unclaimed task index; `fetch_add` hands out each index to
    /// exactly one thread.
    cursor: AtomicUsize,
    remaining: TrackedMutex<usize>,
    done: TrackedCondvar,
}

impl<R: Send> Batch<'_, R> {
    fn run_claimed(&self) -> bool {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= self.tasks.len() {
            return false;
        }
        let task = self.tasks[i].lock().take().expect("task claimed twice");
        let res = panic::catch_unwind(AssertUnwindSafe(task));
        *self.results[i].lock() = Some(res);
        let mut rem = self.remaining.lock();
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
        true
    }
}

impl<R: Send> RunOne for Batch<'_, R> {
    fn run_one(&self) -> bool {
        self.run_claimed()
    }
}

/// Runs every task, spread over the pool plus the calling thread, and
/// returns their results **in task order**. If any task panicked, the
/// first panic (in task order) resumes on the caller after all tasks have
/// finished.
pub(crate) fn run_batch<'scope, R: Send + 'scope>(tasks: Vec<Task<'scope, R>>) -> Vec<R> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let cap = current_num_threads();
    if n == 1 || cap <= 1 {
        // Sequential fast path: no queueing, no synchronization. This is
        // both the `RAYON_NUM_THREADS=1` baseline and the tiny-input
        // shortcut. Panic semantics match the parallel path: every task
        // runs, then the first panic (in task order) is rethrown.
        let mut out = Vec::with_capacity(n);
        let mut first_panic = None;
        for task in tasks {
            match panic::catch_unwind(AssertUnwindSafe(task)) {
                Ok(r) => out.push(r),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            panic::resume_unwind(p);
        }
        return out;
    }

    let pool = global();
    let batch: Arc<Batch<'scope, R>> = Arc::new(Batch {
        results: tasks
            .iter()
            .map(|_| TrackedMutex::new("rayon.result", None))
            .collect(),
        tasks: tasks
            .into_iter()
            .map(|t| TrackedMutex::new("rayon.task", Some(t)))
            .collect(),
        cursor: AtomicUsize::new(0),
        remaining: TrackedMutex::new("rayon.batch.remaining", n),
        done: TrackedCondvar::new("rayon.batch.done"),
    });

    // SAFETY: the queue stores `'static` tickets, but this batch borrows
    // `'scope` data. The transmute is sound because this function does not
    // return until (a) every task has run (`remaining == 0`) and (b) no
    // worker still holds a ticket clone (`strong_count == 1`), so no
    // borrow escapes `'scope`.
    let ticket: Arc<dyn RunOne + 'scope> = batch.clone();
    let ticket: Arc<dyn RunOne + 'static> = unsafe { std::mem::transmute(ticket) };
    // Each ticket admits ONE worker, which then serves the batch until it
    // is drained — so enqueueing `cap - 1` tickets (the caller is the
    // cap'th thread) bounds the batch's true concurrency to `cap`. That
    // is what makes a `ThreadPool::install(n)` cap mean "runs on at most
    // n threads" rather than merely "splits into n·CHUNKS chunks".
    let tickets = n.min(cap - 1);
    {
        let mut q = pool.inner.queue.lock();
        for _ in 0..tickets {
            q.push_back(Arc::clone(&ticket));
        }
    }
    pool.inner.available.notify_all();

    // The caller works through its own batch instead of idling…
    while batch.run_claimed() {}
    // …then waits for tasks claimed by workers.
    {
        let mut rem = batch.remaining.lock();
        while *rem > 0 {
            rem = batch.done.wait(rem);
        }
    }
    // Remove this batch's leftover tickets (tasks the caller claimed
    // directly never consume their queued ticket). Without this, a nested
    // batch run *from a worker* could leave tickets nobody ever pops —
    // and the strong-count wait below would spin forever.
    {
        let mut q = pool.inner.queue.lock();
        q.retain(|t| !Arc::ptr_eq(t, &ticket));
    }
    drop(ticket);
    while Arc::strong_count(&batch) > 1 {
        thread::yield_now();
    }
    let batch = match Arc::try_unwrap(batch) {
        Ok(b) => b,
        Err(_) => unreachable!("all ticket clones were dropped"),
    };

    let mut out = Vec::with_capacity(n);
    let mut first_panic = None;
    for slot in batch.results {
        let res = slot.into_inner().expect("every task ran to completion");
        match res {
            Ok(r) => out.push(r),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        panic::resume_unwind(p);
    }
    out
}
