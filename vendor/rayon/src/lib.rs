//! Sequential, dependency-free shim for the subset of [rayon] this
//! workspace uses (`par_iter`, `par_iter_mut`, `into_par_iter` and the
//! standard iterator adapters chained on them).
//!
//! The build environment has no registry access, so the real rayon cannot
//! be fetched; this shim keeps every call site source-compatible while
//! executing sequentially. Swapping in the real crate is a one-line
//! `Cargo.toml` change — no source edits — because every `par_*` method
//! here returns a plain [`std::iter::Iterator`], a strict subset of
//! rayon's `ParallelIterator` contract for the adapters used in-tree
//! (`map`, `filter`, `flat_map`, `zip`, `enumerate`, `for_each`,
//! `collect`).
//!
//! [rayon]: https://docs.rs/rayon

/// Marker alias so code may write `impl ParallelIterator` bounds; with the
/// sequential shim every [`Iterator`] qualifies.
pub trait ParallelIterator: Iterator + Sized {}
impl<I: Iterator> ParallelIterator for I {}

/// Consuming conversion, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type produced.
    type Item;
    /// The (sequential) iterator standing in for rayon's parallel one.
    type Iter: Iterator<Item = Self::Item>;
    /// Sequential stand-in for rayon's `into_par_iter`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    #[inline]
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// By-reference conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The item type produced (typically `&'data T`).
    type Item: 'data;
    /// The (sequential) iterator standing in for rayon's parallel one.
    type Iter: Iterator<Item = Self::Item>;
    /// Sequential stand-in for rayon's `par_iter`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;
    #[inline]
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mutable by-reference conversion, mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The item type produced (typically `&'data mut T`).
    type Item: 'data;
    /// The (sequential) iterator standing in for rayon's parallel one.
    type Iter: Iterator<Item = Self::Item>;
    /// Sequential stand-in for rayon's `par_iter_mut`.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    #[inline]
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude`.
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let total: u64 = vec![1u64, 2, 3].into_par_iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1u64, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }
}
