//! Work-pool-backed, dependency-free shim for the subset of [rayon] this
//! workspace uses — **genuinely parallel**, unlike the sequential
//! stand-in it replaces.
//!
//! The build environment has no registry access, so the real rayon cannot
//! be fetched; this shim keeps every call site source-compatible while
//! executing on a lazily-initialized global pool of `std::thread` workers
//! (size from `RAYON_NUM_THREADS`, default `available_parallelism()` with
//! a floor of 2; see `src/pool.rs`). Swapping in the real crate remains a
//! one-line `Cargo.toml` change — no source edits — because the surface
//! here mirrors rayon's:
//!
//! * [`prelude`] conversion traits: `par_iter`, `par_iter_mut`,
//!   `into_par_iter` on slices, `Vec`s and integer ranges;
//! * the adapters used in-tree: `map`, `filter`, `flat_map`, `zip`,
//!   `enumerate`, `for_each`, `collect`, `sum`, `count`;
//! * [`join`] for two-way fork–join;
//! * [`slice::ParallelSliceMut`]: `par_sort_by`, `par_sort_by_key`,
//!   `par_sort_unstable_by_key`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`], supported exactly
//!   far enough to pin down thread-count-independence in tests and to
//!   run thread-scaling benchmarks in one process.
//!
//! **Determinism contract:** every pipeline built from the adapters above
//! collects in the exact sequential order (chunks are contiguous and
//! concatenated in order), so outputs are bit-identical at every thread
//! count. The MPC simulator's round accounting depends on this; it is
//! pinned by the workspace-root `tests/parallel_determinism.rs` and by
//! the unit tests in [`iter`].
//!
//! Known divergences from the real crate, accepted for a ~1 kLoC shim:
//! `enumerate`/`zip` are only available directly on indexed bases (which
//! is rayon's `IndexedParallelIterator` requirement anyway), reductions
//! beyond `sum`/`count` are omitted, `par_sort_unstable_by_key` sorts
//! stably (see its docs), and `ThreadPool::install` caps the splitting
//! width *and concurrency* of parallel calls issued by the *calling
//! thread* rather than moving work to a dedicated pool.
//!
//! [rayon]: https://docs.rs/rayon

pub mod iter;
mod pool;
pub mod slice;

pub use pool::current_num_threads;

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::ParallelSliceMut;
}

#[doc(hidden)]
enum Either<A, B> {
    L(A),
    R(B),
}

/// Runs both closures, potentially in parallel (one of them on the
/// calling thread), and returns both results. Mirrors `rayon::join`.
///
/// Both sides always execute, even if one panics; a panic is re-raised on
/// the caller after both have finished (left side first if both panic).
///
/// ```
/// let (a, b) = rayon::join(|| 2 + 2, || "ok");
/// assert_eq!((a, b), (4, "ok"));
/// ```
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut results = pool::run_batch(vec![
        Box::new(move || Either::L(oper_a())) as pool::Task<'_, Either<RA, RB>>,
        Box::new(move || Either::R(oper_b())),
    ]);
    let rb = match results.pop() {
        Some(Either::R(rb)) => rb,
        _ => unreachable!("join results arrive in task order"),
    };
    let ra = match results.pop() {
        Some(Either::L(ra)) => ra,
        _ => unreachable!("join results arrive in task order"),
    };
    (ra, rb)
}

/// Builder for a [`ThreadPool`] handle, mirroring
/// `rayon::ThreadPoolBuilder` far enough for tests and benchmarks.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count `install` will enforce (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool handle. Infallible in this shim; the `Result`
    /// mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        let n = if self.num_threads == 0 {
            pool::current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A handle that scopes parallel execution to a fixed thread count.
///
/// Unlike the real rayon, this does not own dedicated worker threads: the
/// global pool serves everyone, and [`install`](ThreadPool::install)
/// instead caps parallel operations *started inside the closure on this
/// thread* — both how many chunks they split into and how many threads
/// execute them concurrently (a batch admits at most `n − 1` workers
/// besides the caller). A cap of 1 yields exact sequential execution on
/// the calling thread. That is precisely the lever the determinism tests
/// and the thread-scaling benchmarks need.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The thread count this handle enforces.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with parallel operations capped to this handle's thread
    /// count.
    ///
    /// ```
    /// let seq = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    /// let n = seq.install(|| rayon::current_num_threads());
    /// assert_eq!(n, 1);
    /// ```
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        pool::with_thread_cap(self.num_threads, op)
    }
}
