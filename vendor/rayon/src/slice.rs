//! Parallel sorting for mutable slices, mirroring the subset of
//! `rayon::slice::ParallelSliceMut` the workspace uses.
//!
//! Strategy: split the slice into a few runs per pool thread, sort the
//! runs in parallel (each run is a disjoint `&mut` chunk, so this is
//! safe code), then finish with one sequential pass of the standard
//! library's stable sort — a natural-run mergesort that detects the
//! presorted runs and completes in near-linear time, so the
//! `O(n log n)` comparison work happens on the pool. Every method
//! (including the `unstable`-named one, see its docs) sorts stably, so
//! results are bit-identical to the sequential stable sort at every
//! thread count.

use std::cmp::Ordering;

use crate::iter::chunk_cuts;
use crate::pool::{self, Task};

/// Sorts each `cuts`-delimited chunk of `v` in parallel with `sort_chunk`.
fn sort_runs<T, F>(v: &mut [T], cuts: &[usize], sort_chunk: &F)
where
    T: Send,
    F: Fn(&mut [T]) + Sync,
{
    let mut tasks: Vec<Task<'_, ()>> = Vec::with_capacity(cuts.len());
    let mut rest = v;
    let mut start = 0;
    for &end in cuts {
        let (chunk, tail) = rest.split_at_mut(end - start);
        rest = tail;
        start = end;
        tasks.push(Box::new(move || sort_chunk(chunk)));
    }
    pool::run_batch(tasks);
}

/// Below this length the per-task overhead outweighs the parallel sort
/// work; fall through to the sequential sort directly.
const PAR_SORT_MIN_LEN: usize = 2048;

/// Parallel sorting methods for `[T]`, the shim's stand-in for
/// `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// The slice being sorted.
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    /// Parallel **stable** sort with a comparator; same ordering guarantees
    /// as [`slice::sort_by`].
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        let v = self.as_parallel_slice_mut();
        if v.len() < PAR_SORT_MIN_LEN || pool::current_num_threads() <= 1 {
            v.sort_by(|a, b| compare(a, b));
            return;
        }
        let cuts = chunk_cuts(v.len());
        sort_runs(v, &cuts, &|chunk: &mut [T]| {
            chunk.sort_by(|a, b| compare(a, b))
        });
        v.sort_by(|a, b| compare(a, b));
    }

    /// Parallel **stable** sort by key; same ordering guarantees as
    /// [`slice::sort_by_key`].
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.par_sort_by(|a, b| key(a).cmp(&key(b)));
    }

    /// Parallel sort by key with the **unstable-sort contract** of
    /// [`slice::sort_unstable_by_key`].
    ///
    /// Implemented as the stable [`ParallelSliceMut::par_sort_by_key`]:
    /// stability satisfies a superset of the unstable contract, and it is
    /// what keeps equal-key orderings bit-identical at every thread count
    /// (and across the parallel-threshold boundary) — the crate-wide
    /// determinism contract. The real rayon is genuinely unstable here;
    /// after swapping it in, call sites that need cross-thread-count
    /// determinism must use keys that are unique per item (the in-tree
    /// ones already do).
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.par_sort_by_key(key);
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}
