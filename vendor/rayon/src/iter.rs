//! Parallel iterators: chunked, order-preserving, pool-executed.
//!
//! Execution model: a pipeline (`par_iter().map(…).filter(…)`) stays lazy
//! until a terminal operation (`collect`, `for_each`, `sum`, `count`)
//! *drives* it. Driving splits the **base** (slice, `Vec`, integer range)
//! into contiguous chunks — a few per pool thread, see `chunk_cuts` —
//! and runs the composed per-item closure chain over each chunk as one
//! pool task. Chunk results come back in chunk order, so `collect`
//! preserves the sequential order exactly: any pipeline of `map`,
//! `filter`, `flat_map`, `zip` and `enumerate` produces bit-identical
//! output at every thread count. That determinism is load-bearing for the
//! MPC simulator (round accounting compares exact record layouts) and is
//! pinned by `tests/parallel_determinism.rs` at the workspace root.

use std::ops::Range;

use crate::pool::{self, Task};

/// How many chunks each pool thread gets. >1 so that uneven per-item cost
/// (e.g. one heavy shard) load-balances across threads.
const CHUNKS_PER_THREAD: usize = 4;

/// Ascending chunk end-positions covering `0..len` (empty for `len == 0`,
/// a single chunk when the effective thread count is 1).
pub(crate) fn chunk_cuts(len: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let threads = pool::current_num_threads();
    if threads <= 1 {
        return vec![len];
    }
    let chunks = (threads * CHUNKS_PER_THREAD).min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut cuts = Vec::with_capacity(chunks);
    let mut end = 0;
    for i in 0..chunks {
        end += base + usize::from(i < extra);
        cuts.push(end);
    }
    cuts
}

/// A lazy parallel pipeline. The one required method, [`drive`], executes
/// the pipeline chunk-wise on the pool; every adapter and terminal
/// operation is built on it.
///
/// [`drive`]: ParallelIterator::drive
pub trait ParallelIterator: Sized + Send {
    /// The element type flowing out of this pipeline stage.
    type Item: Send;

    /// Executes the pipeline: calls `consumer` once per chunk (in
    /// parallel), handing it the number of *base* items preceding the
    /// chunk and a sequential iterator over the chunk's items, and
    /// returns the per-chunk results **in chunk order**.
    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: Fn(usize, &mut dyn Iterator<Item = Self::Item>) -> R + Sync;

    /// Parallel `map`.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        Map { base: self, f }
    }

    /// Parallel `filter`.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { base: self, f }
    }

    /// Parallel `flat_map`.
    fn flat_map<I, F>(self, f: F) -> FlatMap<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Send + Sync,
    {
        FlatMap { base: self, f }
    }

    /// Calls `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        self.drive(&|_, it| {
            for x in it {
                f(x);
            }
        });
    }

    /// Collects into `C`, preserving the sequential order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Parallel sum (chunk partial sums, then a sequential fold of the
    /// partials in chunk order).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        self.drive(&|_, it| it.sum::<S>()).into_iter().sum()
    }

    /// Number of items produced by the pipeline.
    fn count(self) -> usize {
        self.drive(&|_, it| it.count()).into_iter().sum()
    }
}

/// A pipeline whose length is known and whose base can be split at exact
/// positions — the requirement for position-dependent adapters, mirroring
/// rayon's `IndexedParallelIterator`. Only the base types (slices, `Vec`s,
/// integer ranges) are indexed here, which is where the in-tree call sites
/// use `zip`/`enumerate`.
pub trait IndexedParallelIterator: ParallelIterator {
    /// The sequential iterator over one chunk.
    type ChunkIter: Iterator<Item = Self::Item> + Send;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// Whether the pipeline is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into per-chunk sequential iterators at the given ascending
    /// end positions (each ≤ `len`; items past the last cut are dropped).
    fn split_chunks(self, cuts: &[usize]) -> Vec<Self::ChunkIter>;

    /// Pairs up with `other` item-by-item (truncating to the shorter
    /// side), keeping the pairing identical at every thread count.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Attaches each item's global position.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }
}

/// Drives an indexed base: splits it with [`chunk_cuts`] and runs one pool
/// task per chunk.
fn drive_indexed<I, R, C>(it: I, consumer: &C) -> Vec<R>
where
    I: IndexedParallelIterator,
    R: Send,
    C: Fn(usize, &mut dyn Iterator<Item = I::Item>) -> R + Sync,
{
    let cuts = chunk_cuts(it.len());
    let chunks = it.split_chunks(&cuts);
    let mut tasks: Vec<Task<'_, R>> = Vec::with_capacity(chunks.len());
    let mut start = 0;
    for (chunk, &end) in chunks.into_iter().zip(&cuts) {
        let offset = start;
        start = end;
        tasks.push(Box::new(move || {
            let mut it = chunk;
            consumer(offset, &mut it)
        }));
    }
    pool::run_batch(tasks)
}

// ---------------------------------------------------------------------------
// Conversion traits (rayon's entry points).
// ---------------------------------------------------------------------------

/// Consuming conversion, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type produced.
    type Item: Send;
    /// The parallel iterator over the items.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts into a parallel iterator that consumes `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// By-reference conversion, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The item type produced (typically `&'data T`).
    type Item: Send + 'data;
    /// The parallel iterator over the items.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel iterator over shared references.
    fn par_iter(&'data self) -> Self::Iter;
}

/// Mutable by-reference conversion, mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The item type produced (typically `&'data mut T`).
    type Item: Send + 'data;
    /// The parallel iterator over the items.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

/// Order-preserving parallel collection, mirroring
/// `rayon::iter::FromParallelIterator`.
pub trait FromParallelIterator<T: Send> {
    /// Builds `Self` from the pipeline's items, in sequential order.
    fn from_par_iter<I>(it: I) -> Self
    where
        I: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(it: I) -> Self
    where
        I: ParallelIterator<Item = T>,
    {
        let chunks = it.drive(&|_, items| items.collect::<Vec<T>>());
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Bases: slices, mutable slices, owned vectors, integer ranges.
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceIter<'data, T> {
    type Item = &'data T;
    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: Fn(usize, &mut dyn Iterator<Item = Self::Item>) -> R + Sync,
    {
        drive_indexed(self, consumer)
    }
}

impl<'data, T: Sync> IndexedParallelIterator for SliceIter<'data, T> {
    type ChunkIter = std::slice::Iter<'data, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_chunks(self, cuts: &[usize]) -> Vec<Self::ChunkIter> {
        let mut out = Vec::with_capacity(cuts.len());
        let mut start = 0;
        for &end in cuts {
            out.push(self.slice[start..end].iter());
            start = end;
        }
        out
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParallelIterator for SliceIterMut<'data, T> {
    type Item = &'data mut T;
    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: Fn(usize, &mut dyn Iterator<Item = Self::Item>) -> R + Sync,
    {
        drive_indexed(self, consumer)
    }
}

impl<'data, T: Send> IndexedParallelIterator for SliceIterMut<'data, T> {
    type ChunkIter = std::slice::IterMut<'data, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_chunks(self, cuts: &[usize]) -> Vec<Self::ChunkIter> {
        let mut out = Vec::with_capacity(cuts.len());
        let mut rest = self.slice;
        let mut start = 0;
        for &end in cuts {
            let (chunk, tail) = rest.split_at_mut(end - start);
            out.push(chunk.iter_mut());
            rest = tail;
            start = end;
        }
        out
    }
}

/// Owning parallel iterator over a `Vec<T>`.
pub struct VecIntoIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIntoIter<T> {
    type Item = T;
    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: Fn(usize, &mut dyn Iterator<Item = Self::Item>) -> R + Sync,
    {
        drive_indexed(self, consumer)
    }
}

impl<T: Send> IndexedParallelIterator for VecIntoIter<T> {
    type ChunkIter = std::vec::IntoIter<T>;
    fn len(&self) -> usize {
        self.vec.len()
    }
    fn split_chunks(mut self, cuts: &[usize]) -> Vec<Self::ChunkIter> {
        // Split off from the back so each `split_off` is O(chunk).
        self.vec.truncate(cuts.last().copied().unwrap_or(0));
        let mut out = Vec::with_capacity(cuts.len());
        let mut starts = vec![0];
        starts.extend_from_slice(&cuts[..cuts.len().saturating_sub(1)]);
        for &start in starts.iter().rev() {
            out.push(self.vec.split_off(start).into_iter());
        }
        out.reverse();
        out
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIntoIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        VecIntoIter { vec: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = SliceIterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        SliceIterMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = SliceIterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        SliceIterMut { slice: self }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            fn drive<R, C>(self, consumer: &C) -> Vec<R>
            where
                R: Send,
                C: Fn(usize, &mut dyn Iterator<Item = Self::Item>) -> R + Sync,
            {
                drive_indexed(self, consumer)
            }
        }

        impl IndexedParallelIterator for RangeIter<$t> {
            type ChunkIter = Range<$t>;
            fn len(&self) -> usize {
                if self.range.end <= self.range.start {
                    0
                } else {
                    (self.range.end - self.range.start) as usize
                }
            }
            fn split_chunks(self, cuts: &[usize]) -> Vec<Self::ChunkIter> {
                let mut out = Vec::with_capacity(cuts.len());
                let mut start = self.range.start;
                for &end in cuts {
                    let chunk_end = self.range.start + end as $t;
                    out.push(start..chunk_end);
                    start = chunk_end;
                }
                out
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> Self::Iter {
                RangeIter { range: self }
            }
        }
    )*};
}

range_impl!(u32, u64, usize);

// ---------------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------------

/// Parallel `map` (see [`ParallelIterator::map`]).
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, U> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> U + Send + Sync,
{
    type Item = U;
    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: Fn(usize, &mut dyn Iterator<Item = Self::Item>) -> R + Sync,
    {
        let f = self.f;
        self.base.drive(&|offset, items| {
            let mut mapped = items.map(&f);
            consumer(offset, &mut mapped)
        })
    }
}

/// Parallel `filter` (see [`ParallelIterator::filter`]).
pub struct Filter<B, F> {
    base: B,
    f: F,
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Send + Sync,
{
    type Item = B::Item;
    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: Fn(usize, &mut dyn Iterator<Item = Self::Item>) -> R + Sync,
    {
        let f = self.f;
        self.base.drive(&|offset, items| {
            let mut filtered = items.filter(|x| f(x));
            consumer(offset, &mut filtered)
        })
    }
}

/// Parallel `flat_map` (see [`ParallelIterator::flat_map`]).
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, I> ParallelIterator for FlatMap<B, F>
where
    B: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(B::Item) -> I + Send + Sync,
{
    type Item = I::Item;
    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: Fn(usize, &mut dyn Iterator<Item = Self::Item>) -> R + Sync,
    {
        let f = self.f;
        self.base.drive(&|offset, items| {
            let mut flat = items.flat_map(|x| f(x).into_iter());
            consumer(offset, &mut flat)
        })
    }
}

/// Position-tagging adapter (see [`IndexedParallelIterator::enumerate`]).
pub struct Enumerate<B> {
    base: B,
}

impl<B> ParallelIterator for Enumerate<B>
where
    B: IndexedParallelIterator,
{
    type Item = (usize, B::Item);
    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: Fn(usize, &mut dyn Iterator<Item = Self::Item>) -> R + Sync,
    {
        self.base.drive(&|offset, items| {
            let mut numbered = items.enumerate().map(|(i, x)| (offset + i, x));
            consumer(offset, &mut numbered)
        })
    }
}

/// Pairing adapter (see [`IndexedParallelIterator::zip`]). Both sides are
/// split at identical positions, so pairing matches the sequential zip.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: Fn(usize, &mut dyn Iterator<Item = Self::Item>) -> R + Sync,
    {
        let cuts = chunk_cuts(self.a.len().min(self.b.len()));
        let a_chunks = self.a.split_chunks(&cuts);
        let b_chunks = self.b.split_chunks(&cuts);
        let mut tasks: Vec<Task<'_, R>> = Vec::with_capacity(cuts.len());
        let mut start = 0;
        for ((ac, bc), &end) in a_chunks.into_iter().zip(b_chunks).zip(&cuts) {
            let offset = start;
            start = end;
            tasks.push(Box::new(move || {
                let mut zipped = ac.zip(bc);
                consumer(offset, &mut zipped)
            }));
        }
        pool::run_batch(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_cuts_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 100, 4096, 100_001] {
            let cuts = chunk_cuts(len);
            if len == 0 {
                assert!(cuts.is_empty());
                continue;
            }
            assert_eq!(*cuts.last().unwrap(), len, "cuts must end at len");
            assert!(cuts.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
            assert!(
                cuts.len() <= pool::current_num_threads() * CHUNKS_PER_THREAD,
                "at most a few chunks per thread"
            );
            // Near-even: chunk sizes differ by at most one.
            let mut sizes = Vec::new();
            let mut prev = 0;
            for &c in &cuts {
                sizes.push(c - prev);
                prev = c;
            }
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "len {len}: uneven chunks {sizes:?}");
        }
    }

    #[test]
    fn split_chunks_partition_vec_in_order() {
        let v: Vec<u64> = (0..1000).collect();
        let cuts = vec![100, 400, 1000];
        let chunks = v.clone().into_par_iter().split_chunks(&cuts);
        assert_eq!(chunks.len(), 3);
        let flat: Vec<u64> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, v);
    }

    #[test]
    fn split_chunks_partition_slice_and_ranges() {
        let v: Vec<u64> = (0..100).collect();
        let cuts = vec![1, 99, 100];
        let flat: Vec<u64> = SliceIter { slice: &v }
            .split_chunks(&cuts)
            .into_iter()
            .flatten()
            .copied()
            .collect();
        assert_eq!(flat, v);
        let flat: Vec<u32> = (10u32..110)
            .into_par_iter()
            .split_chunks(&cuts)
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(flat, (10u32..110).collect::<Vec<_>>());
    }
}
