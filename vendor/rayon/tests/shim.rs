//! Behavioural tests for the parallel shim: order preservation,
//! multi-thread execution, panic propagation, `join`, sorting, and the
//! `ThreadPool::install` thread-cap used by the determinism suite.

use std::collections::HashSet;
use std::panic;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rayon::prelude::*;

fn pool_with(n: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
}

#[test]
fn par_iter_matches_iter() {
    let v: Vec<u64> = (0..10_000).collect();
    let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
    let expect: Vec<u64> = v.iter().map(|&x| x * 2).collect();
    assert_eq!(doubled, expect);
}

#[test]
fn into_par_iter_consumes_and_sums() {
    let total: u64 = (0..1000u64).collect::<Vec<_>>().into_par_iter().sum();
    assert_eq!(total, 499_500);
}

#[test]
fn par_iter_mut_mutates_every_item() {
    let mut v: Vec<u64> = (0..5000).collect();
    v.par_iter_mut().for_each(|x| *x += 10);
    assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 10));
}

#[test]
fn range_into_par_iter() {
    let squares: Vec<usize> = (0..5000usize).into_par_iter().map(|i| i * i).collect();
    assert_eq!(squares.len(), 5000);
    assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
}

#[test]
fn enumerate_offsets_are_global() {
    let v: Vec<u32> = (0..10_000).collect();
    let pairs: Vec<(usize, u32)> = v.into_par_iter().enumerate().map(|(i, x)| (i, x)).collect();
    assert!(pairs.iter().all(|&(i, x)| i == x as usize));
}

#[test]
fn zip_pairs_like_sequential_zip() {
    let a: Vec<u64> = (0..7001).collect();
    let b: Vec<u64> = (0..7001).map(|x| x * 3).collect();
    let sums: Vec<u64> = a
        .par_iter()
        .zip(b.par_iter())
        .map(|(&x, &y)| x + y)
        .collect();
    assert!(sums.iter().enumerate().all(|(i, &s)| s == 4 * i as u64));
}

#[test]
fn zip_truncates_to_shorter_side() {
    let a: Vec<u64> = (0..5000).collect();
    let b: Vec<u64> = (0..3333).collect();
    let pairs: Vec<(u64, u64)> = a.into_par_iter().zip(b.into_par_iter()).collect();
    assert_eq!(pairs.len(), 3333);
    assert_eq!(pairs[3332], (3332, 3332));
}

#[test]
fn filter_and_flat_map_preserve_order() {
    let v: Vec<u64> = (0..20_000).collect();
    let par: Vec<u64> = v
        .par_iter()
        .filter(|&&x| x % 3 == 0)
        .flat_map(|&x| [x, x + 1])
        .collect();
    let seq: Vec<u64> = v
        .iter()
        .filter(|&&x| x % 3 == 0)
        .flat_map(|&x| [x, x + 1])
        .collect();
    assert_eq!(par, seq);
}

#[test]
fn empty_inputs_are_fine() {
    let empty: Vec<u64> = Vec::new();
    let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
    assert!(out.is_empty());
    let out: Vec<u64> = Vec::<u64>::new().into_par_iter().collect();
    assert!(out.is_empty());
    #[allow(clippy::reversed_empty_ranges)]
    let out: Vec<u32> = (5u32..5).into_par_iter().collect();
    assert!(out.is_empty());
    let count = Vec::<u64>::new().par_iter().count();
    assert_eq!(count, 0);
    Vec::<u64>::new()
        .par_iter_mut()
        .for_each(|_| unreachable!());
}

#[test]
fn single_item_input() {
    let one: Vec<u64> = vec![42].into_par_iter().map(|x| x + 1).collect();
    assert_eq!(one, vec![43]);
}

#[test]
fn results_identical_across_thread_counts() {
    let v: Vec<u64> = (0..50_000).collect();
    let run = || -> Vec<u64> {
        v.par_iter()
            .map(|&x| x.wrapping_mul(0x9e37_79b9))
            .filter(|&x| x % 7 != 0)
            .collect()
    };
    let seq = pool_with(1).install(run);
    let par4 = pool_with(4).install(run);
    let par7 = pool_with(7).install(run);
    assert_eq!(seq, par4);
    assert_eq!(seq, par7);
}

#[test]
fn install_caps_reported_thread_count() {
    assert_eq!(pool_with(1).install(rayon::current_num_threads), 1);
    assert_eq!(pool_with(3).install(rayon::current_num_threads), 3);
    // The cap is scoped: outside `install` the global size is back.
    let global = rayon::current_num_threads();
    assert_eq!(rayon::current_num_threads(), global);
}

#[test]
fn observes_multiple_threads_at_default_settings() {
    // Acceptance criterion for the shim: under default settings the pool
    // really executes on ≥ 2 distinct threads. Two tasks rendezvous so
    // neither can finish until both have started — which forces them onto
    // different threads (and would time out if the pool were sequential).
    // Under RAYON_NUM_THREADS=1 the shim is exactly sequential instead.
    if rayon::current_num_threads() < 2 {
        let ids: HashSet<_> = {
            let seen = Mutex::new(HashSet::new());
            (0..100u64).collect::<Vec<_>>().par_iter().for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            });
            seen.into_inner().unwrap()
        };
        assert_eq!(ids.len(), 1, "1-thread pool must stay on the caller");
        return;
    }
    let seen = Mutex::new(HashSet::new());
    let started = AtomicUsize::new(0);
    let rendezvous = || {
        seen.lock().unwrap().insert(std::thread::current().id());
        started.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(30);
        while started.load(Ordering::SeqCst) < 2 {
            assert!(
                Instant::now() < deadline,
                "second task never started: pool is not parallel"
            );
            std::thread::yield_now();
        }
    };
    rayon::join(rendezvous, rendezvous);
    assert!(
        seen.into_inner().unwrap().len() >= 2,
        "default pool must execute on at least 2 distinct threads"
    );
}

#[test]
fn join_runs_both_sides_and_returns_both() {
    let left_ran = AtomicBool::new(false);
    let right_ran = AtomicBool::new(false);
    let (a, b) = rayon::join(
        || {
            left_ran.store(true, Ordering::SeqCst);
            1u32
        },
        || {
            right_ran.store(true, Ordering::SeqCst);
            "right"
        },
    );
    assert_eq!((a, b), (1, "right"));
    assert!(left_ran.load(Ordering::SeqCst));
    assert!(right_ran.load(Ordering::SeqCst));
}

#[test]
fn join_propagates_panic_but_still_runs_other_side() {
    let right_ran = AtomicBool::new(false);
    let res = panic::catch_unwind(panic::AssertUnwindSafe(|| {
        rayon::join(
            || panic!("left side exploded"),
            || right_ran.store(true, Ordering::SeqCst),
        )
    }));
    let payload = res.expect_err("panic must propagate out of join");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert!(msg.contains("left side exploded"), "got: {msg}");
    assert!(
        right_ran.load(Ordering::SeqCst),
        "the non-panicking side must still execute"
    );
}

#[test]
fn worker_panic_propagates_to_caller_and_pool_survives() {
    let res = panic::catch_unwind(|| {
        (0..10_000u64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|i| {
                if i == 4321 {
                    panic!("item 4321 failed");
                }
            });
    });
    assert!(res.is_err(), "worker panic must reach the caller");
    // The pool must remain fully usable afterwards.
    let total: u64 = (0..1000u64).collect::<Vec<_>>().into_par_iter().sum();
    assert_eq!(total, 499_500);
}

#[test]
fn par_sort_by_is_stable_and_matches_sequential() {
    // Keys collide heavily so stability is actually exercised.
    let data: Vec<(u64, usize)> = (0..40_000)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % 97, i))
        .collect();
    let mut par = data.clone();
    par.par_sort_by(|a, b| a.0.cmp(&b.0));
    let mut seq = data;
    seq.sort_by_key(|a| a.0);
    assert_eq!(par, seq, "stable parallel sort must match std stable sort");
}

#[test]
fn par_sort_by_key_matches_sequential() {
    let data: Vec<u64> = (0..30_000)
        .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let mut par = data.clone();
    par.par_sort_by_key(|&x| x);
    let mut seq = data;
    seq.sort_by_key(|&x| x);
    assert_eq!(par, seq);
}

#[test]
fn par_sort_unstable_by_key_sorts_unique_keys_deterministically() {
    let data: Vec<u64> = (0..40_000)
        .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let sorted_at = |threads: usize| {
        pool_with(threads).install(|| {
            let mut v = data.clone();
            v.par_sort_unstable_by_key(|&x| x);
            v
        })
    };
    let seq = sorted_at(1);
    assert!(seq.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(seq, sorted_at(4));
    assert_eq!(seq, sorted_at(9));
}

#[test]
fn small_slices_sort_fine() {
    let mut v = vec![3u64, 1, 2];
    v.par_sort_by(|a, b| a.cmp(b));
    assert_eq!(v, vec![1, 2, 3]);
    let mut v: Vec<u64> = vec![];
    v.par_sort_unstable_by_key(|&x| x);
    assert!(v.is_empty());
}

#[test]
fn nested_parallelism_does_not_deadlock() {
    // A parallel op issued from inside a pool task must complete: the
    // submitting thread works through its own batch instead of blocking.
    let sums: Vec<u64> = (0..64u64)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|i| {
            (0..1000u64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|j| i + j)
                .sum()
        })
        .collect();
    assert_eq!(sums[0], 499_500);
    assert_eq!(sums[1], 500_500);
}
