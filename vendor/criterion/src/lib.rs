//! Minimal, dependency-free shim for the subset of [criterion] this
//! workspace's benches use: `Criterion::{benchmark_group, bench_function}`,
//! `BenchmarkGroup::{bench_with_input, bench_function, finish}`,
//! `Bencher::iter`, `BenchmarkId::{new, from_parameter}`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched. Timing here is a plain [`std::time::Instant`] loop that
//! prints mean/min/max per benchmark — adequate for the relative
//! comparisons in `EXPERIMENTS.md`, with none of criterion's statistical
//! machinery. When the binary is invoked with `--test` (as `cargo test`
//! does for bench targets), each benchmark body runs exactly once so the
//! test suite stays fast.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from [`std::hint::black_box`].
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare parameter, rendered as its `Display` form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher<'a> {
    samples: usize,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Run `routine` `sample_size` times (once in `--test` mode),
    /// recording wall-clock time per run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut results = Vec::new();
    let mut b = Bencher {
        samples,
        results: &mut results,
    };
    f(&mut b);
    if results.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().unwrap();
    let max = results.iter().max().unwrap();
    println!(
        "bench {label:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({n} samples)",
        n = results.len()
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench targets with the `--test` flag; run each
        // routine once there so the suite stays fast.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Time a single named routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.id, self.effective_samples(), |b| f(b));
        self
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in the group takes.
    /// Group-scoped, as in the real crate: the parent [`Criterion`]'s
    /// setting is untouched.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn effective_samples(&self) -> usize {
        if self.criterion.test_mode {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        }
    }

    /// Time `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.effective_samples(), |b| f(b, input));
        self
    }

    /// Time a routine under this group's name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.effective_samples(), |b| f(b));
        self
    }

    /// End the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`. Both the `name/config/targets` form and
/// the positional form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running each group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("sort", 64).id, "sort/64");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn group_sample_size_is_group_scoped() {
        let mut c = Criterion::default().sample_size(5);
        c.test_mode = false;
        let mut group_runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("a", |b| b.iter(|| group_runs += 1));
            group.finish();
        }
        let mut later_runs = 0usize;
        c.bench_function("later", |b| b.iter(|| later_runs += 1));
        assert_eq!(group_runs, 2, "group override applies inside the group");
        assert_eq!(later_runs, 5, "group override must not leak to the parent");
    }

    #[test]
    fn bencher_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        c.test_mode = false;
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.bench_with_input(BenchmarkId::from_parameter(1), &2u64, |b, &x| {
                b.iter(|| {
                    runs += 1;
                    x * 2
                })
            });
            group.finish();
        }
        assert_eq!(runs, 3);
    }
}
