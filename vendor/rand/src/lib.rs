//! Deterministic, dependency-free shim for the subset of [rand] this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range}` over
//! integer and float ranges, and `SliceRandom::shuffle`.
//!
//! The build environment has no registry access, so the real rand cannot
//! be fetched. The shim's [`rngs::StdRng`] is a xoshiro256** generator
//! seeded via SplitMix64 — high-quality, fast, and fully deterministic
//! for a given seed, which is all the experiment harness requires
//! (every generator in this workspace takes an explicit `u64` seed).
//! Note the stream differs from the real crate's ChaCha-based `StdRng`,
//! so seeds are reproducible *within* this workspace, not across shims.
//!
//! [rand]: https://docs.rs/rand

/// Trait for seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// One step of the SplitMix64 sequence; used to expand seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample from,
/// mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw a uniform sample from `self` using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types [`Rng::gen`] can produce, mirroring `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draw a sample from the type's standard distribution.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over their full range).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range. Panics on an empty range, like the real crate.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a boolean that is `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_uint_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping is fine here: the
                // workspace only samples spans far below 2^48, where the
                // modulo bias is negligible for test/benchmark purposes.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_uint_sampling!(u8, u16, u32, u64, usize);

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

pub mod rngs {
    //! Concrete generators, mirroring `rand::rngs`.
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for the real
    /// crate's `StdRng`. Same seed ⇒ same stream, forever.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the 64-bit seed with SplitMix64 per Blackman &
            // Vigna's recommendation (avoids the all-zero state).
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// In-place slice utilities, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }
}

pub mod seq {
    //! Sequence-related traits, mirroring `rand::seq`.
    pub use super::SliceRandom;
}

pub mod prelude {
    //! Drop-in replacement for `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
